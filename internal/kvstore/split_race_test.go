package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

// Regression tests for the split/routing races: the table's region list
// is swapped by SplitRegion while concurrent clients route reads and
// writes through it. Run with -race.

// loadSplittableTable creates a table with n rows of one cell each.
func loadSplittableTable(t *testing.T, c *Cluster, name string, n int) {
	t.Helper()
	if _, err := c.CreateTable(name, []string{"d"}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < n; i++ {
		cells = append(cells, Cell{Row: fmt.Sprintf("r%04d", i), Family: "d", Qualifier: "v", Value: []byte{byte(i)}})
	}
	if err := c.BatchPut(name, cells); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSplitAndAccess drives gets, scans, and writes against a
// table while regions split underneath them. Before the region list was
// synchronized this was a data race (and reads could observe a retired
// region's stale routing).
func TestConcurrentSplitAndAccess(t *testing.T) {
	c := testCluster(t)
	const rows = 400
	loadSplittableTable(t, c, "t", rows)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Splitter: repeatedly split the region holding a moving pivot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			_ = c.SplitRegion("t", fmt.Sprintf("r%04d", (i*61)%rows))
		}
		close(stop)
	}()

	// Readers: keyed gets must always see their row.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				row := fmt.Sprintf("r%04d", i%rows)
				got, err := c.Get("t", row)
				if err != nil {
					t.Errorf("get %s: %v", row, err)
					return
				}
				if got == nil {
					t.Errorf("get %s: row lost during split", row)
					return
				}
				i += 7
			}
		}(g)
	}

	// Scanner: full scans must keep seeing every row exactly once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			all, err := c.ScanAll(Scan{Table: "t", Caching: 64})
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			if len(all) != rows {
				t.Errorf("scan saw %d rows, want %d", len(all), rows)
				return
			}
		}
	}()

	// Writer: updates must never land on a retired region.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			row := fmt.Sprintf("r%04d", i%rows)
			if err := c.Put("t", Cell{Row: row, Family: "d", Qualifier: "w", Value: []byte("x")}); err != nil {
				t.Errorf("put %s: %v", row, err)
				return
			}
			i += 13
		}
	}()

	// Stats aggregators: cluster-wide iteration over every table's
	// region list while splits swap it (these readers raced the swap
	// even after the routing paths were synchronized).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.RowCacheStats()
			c.CompactionBytes()
			if _, err := c.TableStats("t"); err != nil {
				t.Errorf("TableStats: %v", err)
				return
			}
			if i%16 == 0 {
				c.SetRowCacheBytes(DefaultRowCacheBytes)
			}
			if err := c.MoveRegion("t", fmt.Sprintf("r%04d", (i*31)%rows), i%4); err != nil {
				t.Errorf("MoveRegion: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// Post-split integrity: every row still present, updates included.
	all, err := c.ScanAll(Scan{Table: "t", Caching: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != rows {
		t.Fatalf("after splits: %d rows, want %d", len(all), rows)
	}
}

// TestSplitWriteNotLost closes the snapshot/swap window: a write that
// lands on the parent after the split's cell snapshot must be retried
// onto a child, not silently dropped into the retired region.
func TestSplitWriteNotLost(t *testing.T) {
	c := testCluster(t)
	const rows = 200
	loadSplittableTable(t, c, "t", rows)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rows; i++ {
			if err := c.Put("t", Cell{Row: fmt.Sprintf("r%04d", i), Family: "d", Qualifier: "u", Value: []byte("y")}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			_ = c.SplitRegion("t", fmt.Sprintf("r%04d", rows/2))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < rows; i++ {
		row := fmt.Sprintf("r%04d", i)
		got, err := c.Get("t", row)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil || got.Cell("d", "u") == nil {
			t.Fatalf("update to %s lost across split", row)
		}
	}
}

// TestSplitSeedsChildrenWithoutWALBacklog: split children must not hold
// the whole region's contents as WAL records — the batched seed flushes
// into a segment and truncates the log.
func TestSplitSeedsChildrenWithoutWALBacklog(t *testing.T) {
	c := testCluster(t)
	loadSplittableTable(t, c, "t", 300)

	if err := c.SplitRegion("t", "r0150"); err != nil {
		t.Fatal(err)
	}
	regions, err := c.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(regions))
	}
	for _, r := range regions {
		if sz := r.WALSize(); sz != 0 {
			t.Errorf("region %d holds %d bytes of seed WAL; want 0 (flushed)", r.ID(), sz)
		}
		if r.DiskSize() == 0 {
			t.Errorf("region %d seeded empty", r.ID())
		}
	}
	// And the data survived the flush.
	all, err := c.ScanAll(Scan{Table: "t", Caching: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 300 {
		t.Fatalf("after split: %d rows, want 300", len(all))
	}
}

// TestLiveCellCountIgnoresVersionChurn: LiveCellCount must report the
// live column count regardless of how many stored versions updates have
// piled up, and TableStats must surface it.
func TestLiveCellCountIgnoresVersionChurn(t *testing.T) {
	c := testCluster(t)
	if _, err := c.CreateTable("t", []string{"d"}, nil); err != nil {
		t.Fatal(err)
	}
	const rows = 50
	for round := 0; round < 5; round++ {
		for i := 0; i < rows; i++ {
			if err := c.Put("t", Cell{Row: fmt.Sprintf("r%02d", i), Family: "d", Qualifier: "v", Value: []byte{byte(round)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := c.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != rows*5 {
		t.Errorf("stored versions = %d, want %d", st.Cells, rows*5)
	}
	if st.LiveCells != rows {
		t.Errorf("LiveCells = %d, want %d", st.LiveCells, rows)
	}
	// Deleting a column removes it from the live set.
	if err := c.Delete("t", "r00", "d", "v", 0); err != nil {
		t.Fatal(err)
	}
	st, err = c.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveCells != rows-1 {
		t.Errorf("LiveCells after delete = %d, want %d", st.LiveCells, rows-1)
	}
}

// TestLocalScanSurvivesSplit: a locality-pinned reader (a MapReduce
// task that snapshotted its region list at job start) must still be
// able to scan a region that a concurrent split retired — the parent
// keeps its range's complete pre-split data.
func TestLocalScanSurvivesSplit(t *testing.T) {
	c := testCluster(t)
	loadSplittableTable(t, c, "t", 200)
	regions, err := c.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("want 1 region, got %d", len(regions))
	}
	parent := regions[0]

	if err := c.SplitRegion("t", "r0100"); err != nil {
		t.Fatal(err)
	}

	// Client-routed access re-routes to the children...
	if _, _, err := parent.get("r0000", nil); err != errRegionSplit {
		t.Errorf("client get on retired parent = %v, want errRegionSplit", err)
	}
	// ...but the pinned local scan still sees everything.
	rows, _, err := parent.LocalScan("", "", 0, nil, 0, nil)
	if err != nil {
		t.Fatalf("LocalScan on retired parent: %v", err)
	}
	if len(rows) != 200 {
		t.Fatalf("LocalScan on retired parent saw %d rows, want 200", len(rows))
	}
}

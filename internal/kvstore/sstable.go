package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bloom"
)

// SSTable file layout, written front to back:
//
//	┌──────────────────────────────┐
//	│ data block 0 (framed)        │  restart-point prefix-compressed
//	│ data block 1 (framed)        │  cells, ~4 KiB per block
//	│ …                            │
//	│ index block 0 (framed)       │  first-key → data block off/len,
//	│ …                            │  up to 64 data blocks per entry run
//	│ summary block (framed)       │  first-key → index block off/len
//	│ bloom block (framed)         │  serialized row-key bloom filter
//	│ meta block (framed)          │  min/max row, counts, logical size
//	│ footer (60 bytes, unframed)  │  offsets of the three tail blocks,
//	└──────────────────────────────┘  format version, magic
//
// The summary, bloom, and meta blocks are loaded once at open and held
// in memory; a point get then costs at most two block reads (one index,
// one data), both served from the shared block cache when warm.
const (
	// targetBlockBytes is the uncompressed payload size a data block
	// aims for before it is cut.
	targetBlockBytes = 4 << 10

	// indexBlockFanout is how many data blocks one index block covers;
	// the summary holds one entry per index block, i.e. a 1/64 sample
	// of the index.
	indexBlockFanout = 64

	sstMagic      = uint64(0x524a535354424c31) // "RJSSTBL1"
	sstVersion    = 1
	sstFooterLen  = 60
	sstFileSuffix = ".sst"
)

// blockReader abstracts random block access to a segment file. The
// production implementation issues pread(2) via os.File.ReadAt; an mmap
// implementation (pointing the same interface at a mapped region) drops
// in without touching the read path.
type blockReader interface {
	// readAt fills p from the given file offset, erroring on short reads.
	readAt(p []byte, off int64) error
	close() error
}

// preadReader is the VFS-file-backed blockReader. Transient read
// failures are retried with bounded backoff (see readFullAt); what
// escapes is typed — IOError for a read that never produced bytes,
// CorruptionError for a file that stably ends where data should be.
type preadReader struct {
	f    File
	path string
}

func (r *preadReader) readAt(p []byte, off int64) error {
	return readFullAt(r.f, r.path, p, off)
}

func (r *preadReader) close() error { return r.f.Close() }

// diskSegment is an open on-disk SSTable: the durable counterpart of
// *segment, holding only the summary, bloom filter, and meta block in
// memory and fetching index/data blocks on demand through the shared
// block cache.
type diskSegment struct {
	name    string // file name within the store directory, e.g. "000007.sst"
	id      uint64 // file number, the block-cache key namespace
	br      blockReader
	cache   *blockCache
	summary []indexEntry // one entry per index block
	filter  *bloom.Filter
	meta    sstMeta
	fileLen uint64
}

func (d *diskSegment) mayContainRow(row string) bool {
	if d.meta.count == 0 || row < d.meta.minRow || row > d.meta.maxRow {
		return false
	}
	return d.filter == nil || d.filter.ContainsString(row)
}

func (d *diskSegment) numCells() int    { return int(d.meta.count) }
func (d *diskSegment) dataSize() uint64 { return d.meta.logical }
func (d *diskSegment) close() error     { return d.br.close() }

// readBlockFrame fetches and verifies one framed block from the file.
// Verification failures surface as CorruptionError naming the file and
// frame offset.
func (d *diskSegment) readBlockFrame(off, length uint64) ([]byte, error) {
	if length < blockFrameOverhead || off+length > d.fileLen {
		return nil, corruptionAt(d.name, int64(off), corruptf("block frame [%d,+%d) outside file of %d bytes", off, length, d.fileLen))
	}
	frame := make([]byte, length)
	if err := d.br.readAt(frame, int64(off)); err != nil {
		return nil, err
	}
	payload, err := decodeFrame(frame)
	if err != nil {
		return nil, corruptionAt(d.name, int64(off), err)
	}
	return payload, nil
}

// readDataBlock returns the decoded data block at off, charging io for
// the access: a cache hit costs nothing beyond the counter, a miss is
// one measured block read of the framed length.
func (d *diskSegment) readDataBlock(io *OpStats, off, length uint64) (*decodedBlock, error) {
	if b, ok := d.cache.lookup(d.id, off); ok {
		if io != nil {
			io.BlockCacheHits++
		}
		return b.(*decodedBlock), nil
	}
	payload, err := d.readBlockFrame(off, length)
	if err != nil {
		return nil, err
	}
	blk, err := decodeDataBlock(payload)
	if err != nil {
		return nil, corruptionAt(d.name, int64(off), err)
	}
	if io != nil {
		io.BytesRead += length
		io.BlockReads++
	}
	d.cache.insert(d.id, off, blk, blk.bytes)
	return blk, nil
}

// readIndexBlock returns the decoded index block at off, with the same
// cache/charging contract as readDataBlock.
func (d *diskSegment) readIndexBlock(io *OpStats, off, length uint64) ([]indexEntry, error) {
	if b, ok := d.cache.lookup(d.id, off); ok {
		if io != nil {
			io.BlockCacheHits++
		}
		return b.([]indexEntry), nil
	}
	payload, err := d.readBlockFrame(off, length)
	if err != nil {
		return nil, err
	}
	entries, err := decodeIndexBlock(payload)
	if err != nil {
		return nil, corruptionAt(d.name, int64(off), err)
	}
	if io != nil {
		io.BytesRead += length
		io.BlockReads++
	}
	var bytes uint64
	for _, e := range entries {
		bytes += uint64(len(e.firstKey)) + 48
	}
	d.cache.insert(d.id, off, entries, bytes)
	return entries, nil
}

// seekEntry returns the position of the last entry with firstKey <=
// start, or -1 when start sorts before everything.
func seekEntry(entries []indexEntry, start string) int {
	return sort.Search(len(entries), func(i int) bool {
		return entries[i].firstKey > start
	}) - 1
}

// diskSegIter streams a diskSegment's cells in key order from >= start,
// loading index and data blocks lazily and charging every read to the
// OpStats it was created with. I/O errors park the iterator invalid and
// surface through fail().
type diskSegIter struct {
	seg *diskSegment
	io  *OpStats

	si  int          // current summary position (index block)
	idx []indexEntry // decoded current index block
	ii  int          // current index position (data block)
	blk *decodedBlock
	bi  int // current entry within blk
	err error
}

// iterAt positions an iterator at the first cell with key >= start.
func (d *diskSegment) iterAt(start string, io *OpStats) cellIter {
	it := &diskSegIter{seg: d, io: io}
	if len(d.summary) == 0 {
		return it
	}
	it.si = seekEntry(d.summary, start)
	if it.si < 0 {
		it.si = 0
	}
	if !it.loadIndex() {
		return it
	}
	it.ii = seekEntry(it.idx, start)
	if it.ii < 0 {
		it.ii = 0
	}
	if !it.loadData() {
		return it
	}
	it.bi = sort.SearchStrings(it.blk.keys, start)
	it.skipExhausted()
	return it
}

// loadIndex fetches the index block at the current summary position.
//
//lint:allow chargecheck block reads accumulate into the iterator's threaded OpStats; the OpStats-returning Region caller charges sim.Metrics.
func (it *diskSegIter) loadIndex() bool {
	idx, err := it.seg.readIndexBlock(it.io, it.seg.summary[it.si].off, it.seg.summary[it.si].length)
	if err != nil {
		it.fell(err)
		return false
	}
	it.idx = idx
	return true
}

// loadData fetches the data block at the current index position.
//
//lint:allow chargecheck block reads accumulate into the iterator's threaded OpStats; the OpStats-returning Region caller charges sim.Metrics.
func (it *diskSegIter) loadData() bool {
	blk, err := it.seg.readDataBlock(it.io, it.idx[it.ii].off, it.idx[it.ii].length)
	if err != nil {
		it.fell(err)
		return false
	}
	it.blk = blk
	it.bi = 0
	return true
}

// skipExhausted advances past empty tails: when bi runs off the current
// block it steps to the next data block, then the next index block.
func (it *diskSegIter) skipExhausted() {
	for it.err == nil && it.blk != nil && it.bi >= len(it.blk.keys) {
		it.ii++
		if it.ii >= len(it.idx) {
			it.si++
			if it.si >= len(it.seg.summary) {
				it.blk = nil
				return
			}
			if !it.loadIndex() {
				return
			}
			it.ii = 0
		}
		if !it.loadData() {
			return
		}
	}
}

func (it *diskSegIter) fell(err error) {
	it.err = err
	it.blk = nil
}

func (it *diskSegIter) valid() bool {
	return it.err == nil && it.blk != nil && it.bi < len(it.blk.keys)
}
func (it *diskSegIter) key() string { return it.blk.keys[it.bi] }
func (it *diskSegIter) cell() *Cell { return it.blk.cells[it.bi] }
func (it *diskSegIter) fail() error { return it.err }

func (it *diskSegIter) next() {
	it.bi++
	it.skipExhausted()
}

// sstWriter streams sorted cells into an SSTable file.
type sstWriter struct {
	f   File
	w   *bufio.Writer
	off uint64

	blk       blockWriter
	blkFirst  string // internal key of the current block's first entry
	index     []indexEntry
	rows      []string // distinct row keys, for the bloom filter
	meta      sstMeta
	haveFirst bool
}

// flushBlock cuts the current data block and records its index entry.
func (w *sstWriter) flushBlock() error {
	if w.blk.empty() {
		return nil
	}
	payload, err := w.blk.finish()
	if err != nil {
		return err
	}
	frame := encodeFrame(payload)
	if _, err := w.w.Write(frame); err != nil {
		return err
	}
	w.index = append(w.index, indexEntry{firstKey: w.blkFirst, off: w.off, length: uint64(len(frame))})
	w.off += uint64(len(frame))
	return nil
}

// writeFramed writes one framed auxiliary block and returns its span.
func (w *sstWriter) writeFramed(payload []byte) (off, length uint64, err error) {
	frame := encodeFrame(payload)
	if _, err := w.w.Write(frame); err != nil {
		return 0, 0, err
	}
	off = w.off
	w.off += uint64(len(frame))
	return off, uint64(len(frame)), nil
}

// writeSSTable drains it (sorted by internal key, newest version first
// within a column) into a new SSTable file in dir, fsyncs it, and
// returns an open diskSegment reading from the same descriptor. An
// empty iterator writes nothing and returns (nil, nil). The caller
// registers the file in the store manifest; until then a crash leaves
// an orphan that cleanOrphans removes at next open.
func writeSSTable(fsys VFS, dir, name string, cache *blockCache, it cellIter) (seg *diskSegment, err error) {
	if fsys == nil {
		fsys = DefaultVFS()
	}
	if !it.valid() {
		if err := it.fail(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	path := dir + "/" + name
	f, err := fsys.Create(path)
	if err != nil {
		return nil, &IOError{Path: name, Op: "create", Err: err}
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(path)
		}
	}()

	w := &sstWriter{f: f, w: bufio.NewWriterSize(f, 1<<16)}
	lastRow := ""
	for ; it.valid(); it.next() {
		k, c := it.key(), it.cell()
		_, _, _, _, seq, perr := parseCellKey(k)
		if perr != nil {
			return nil, perr
		}
		if !w.haveFirst {
			w.meta.minRow = c.Row
			w.haveFirst = true
		}
		if w.blk.empty() {
			w.blkFirst = k
		}
		w.blk.add(c, seq)
		if c.Row != lastRow {
			w.rows = append(w.rows, c.Row)
			lastRow = c.Row
		}
		w.meta.maxRow = c.Row
		w.meta.count++
		w.meta.logical += c.StoredSize()
		if c.Timestamp > w.meta.maxTs {
			w.meta.maxTs = c.Timestamp
		}
		if w.blk.size() >= targetBlockBytes {
			if err := w.flushBlock(); err != nil {
				return nil, err
			}
		}
	}
	if err := it.fail(); err != nil {
		return nil, err
	}
	if err := w.flushBlock(); err != nil {
		return nil, err
	}

	// Index blocks: runs of indexBlockFanout data-block entries; the
	// summary samples the first key of each run.
	var summary []indexEntry
	for i := 0; i < len(w.index); i += indexBlockFanout {
		end := i + indexBlockFanout
		if end > len(w.index) {
			end = len(w.index)
		}
		off, length, err := w.writeFramed(encodeIndexBlock(w.index[i:end]))
		if err != nil {
			return nil, err
		}
		summary = append(summary, indexEntry{firstKey: w.index[i].firstKey, off: off, length: length})
	}
	summaryOff, summaryLen, err := w.writeFramed(encodeIndexBlock(summary))
	if err != nil {
		return nil, err
	}

	m, k := bloom.OptimalParams(uint64(len(w.rows)), segmentBloomFPP)
	filter := bloom.NewFilter(m, k)
	for _, r := range w.rows {
		filter.AddString(r)
	}
	fbits, err := filter.MarshalBinary()
	if err != nil {
		return nil, err
	}
	bloomOff, bloomLen, err := w.writeFramed(fbits)
	if err != nil {
		return nil, err
	}

	metaOff, metaLen, err := w.writeFramed(encodeMetaBlock(w.meta))
	if err != nil {
		return nil, err
	}

	var footer [sstFooterLen]byte
	binary.BigEndian.PutUint64(footer[0:8], summaryOff)
	binary.BigEndian.PutUint64(footer[8:16], summaryLen)
	binary.BigEndian.PutUint64(footer[16:24], bloomOff)
	binary.BigEndian.PutUint64(footer[24:32], bloomLen)
	binary.BigEndian.PutUint64(footer[32:40], metaOff)
	binary.BigEndian.PutUint64(footer[40:48], metaLen)
	binary.BigEndian.PutUint32(footer[48:52], sstVersion)
	binary.BigEndian.PutUint64(footer[52:60], sstMagic)
	if _, err := w.w.Write(footer[:]); err != nil {
		return nil, &IOError{Path: name, Op: "write", Err: err}
	}
	w.off += sstFooterLen
	if err := w.w.Flush(); err != nil {
		return nil, &IOError{Path: name, Op: "write", Err: err}
	}
	if err := f.Sync(); err != nil {
		return nil, &IOError{Path: name, Op: "sync", Err: err}
	}

	return &diskSegment{
		name:    name,
		id:      sstFileNum(name),
		br:      &preadReader{f: f, path: name},
		cache:   cache,
		summary: summary,
		filter:  filter,
		meta:    w.meta,
		fileLen: w.off,
	}, nil
}

// openSSTable opens an existing SSTable file and loads its summary,
// bloom filter, and meta block.
func openSSTable(fsys VFS, dir, name string, cache *blockCache) (*diskSegment, error) {
	if fsys == nil {
		fsys = DefaultVFS()
	}
	f, err := fsys.Open(dir + "/" + name)
	if err != nil {
		return nil, &IOError{Path: name, Op: "open", Err: err}
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, &IOError{Path: name, Op: "stat", Err: err}
	}
	d := &diskSegment{
		name:    name,
		id:      sstFileNum(name),
		br:      &preadReader{f: f, path: name},
		cache:   cache,
		fileLen: uint64(st.Size()),
	}
	if err := d.loadTail(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// loadTail parses the footer and the three tail blocks it points at.
func (d *diskSegment) loadTail() error {
	if d.fileLen < sstFooterLen {
		return corruptionAt(d.name, 0, corruptf("file of %d bytes is shorter than the footer", d.fileLen))
	}
	footerOff := int64(d.fileLen - sstFooterLen)
	var footer [sstFooterLen]byte
	if err := d.br.readAt(footer[:], footerOff); err != nil {
		return err
	}
	if got := binary.BigEndian.Uint64(footer[52:60]); got != sstMagic {
		return corruptionAt(d.name, footerOff, corruptf("bad magic %016x", got))
	}
	if v := binary.BigEndian.Uint32(footer[48:52]); v != sstVersion {
		return corruptionAt(d.name, footerOff, corruptf("unsupported format version %d", v))
	}
	summaryOff := binary.BigEndian.Uint64(footer[0:8])
	summaryLen := binary.BigEndian.Uint64(footer[8:16])
	bloomOff := binary.BigEndian.Uint64(footer[16:24])
	bloomLen := binary.BigEndian.Uint64(footer[24:32])
	metaOff := binary.BigEndian.Uint64(footer[32:40])
	metaLen := binary.BigEndian.Uint64(footer[40:48])

	payload, err := d.readBlockFrame(summaryOff, summaryLen)
	if err != nil {
		return fmt.Errorf("summary: %w", err)
	}
	if d.summary, err = decodeIndexBlock(payload); err != nil {
		return corruptionAt(d.name, int64(summaryOff), err)
	}
	if payload, err = d.readBlockFrame(bloomOff, bloomLen); err != nil {
		return fmt.Errorf("bloom: %w", err)
	}
	if len(payload) > 0 {
		d.filter = new(bloom.Filter)
		if err := d.filter.UnmarshalBinary(payload); err != nil {
			return corruptionAt(d.name, int64(bloomOff), corruptf("bloom filter: %v", err))
		}
	}
	if payload, err = d.readBlockFrame(metaOff, metaLen); err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	if d.meta, err = decodeMetaBlock(payload); err != nil {
		return corruptionAt(d.name, int64(metaOff), err)
	}
	return nil
}

// sstFileNum parses the numeric file number out of "NNNNNN.sst"; the
// number namespaces the file's blocks in the shared cache.
func sstFileNum(name string) uint64 {
	var n uint64
	for i := 0; i < len(name) && name[i] >= '0' && name[i] <= '9'; i++ {
		n = n*10 + uint64(name[i]-'0')
	}
	return n
}

package kvstore

import (
	"io"
	"io/fs"
	"os"
)

// VFS is the filesystem seam every durable-path byte flows through: the
// WAL, SSTables, and the MANIFEST all open their files here instead of
// calling the os package directly. The default implementation (osFS) is
// a thin veneer over the real filesystem; internal/faultfs wraps any
// VFS with deterministic fault schedules (EIO on the nth read, torn
// writes, lying fsync, bit-rot, latency), which is how the failure
// paths in this package are proven out.
//
// Implementations must be safe for concurrent use; the files they
// return must support concurrent ReadAt (pread semantics).
type VFS interface {
	// OpenFile opens path with the given os.O_* flags.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// Create creates path exclusively (O_RDWR|O_CREATE|O_EXCL): the
	// SSTable writer's contract that file numbers are never reused
	// while the previous incarnation still exists.
	Create(path string) (File, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks path.
	Remove(path string) error
	// SyncDir fsyncs the directory itself, making renames and unlinks
	// within it durable.
	SyncDir(path string) error
}

// File is one open handle from a VFS. os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	Truncate(size int64) error
	Sync() error
	Stat() (fs.FileInfo, error)
}

// Flag combinations the durable paths use, named so call sites stay
// free of os.O_* noise.
const (
	osWriteTrunc = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	osReadWrite  = os.O_RDWR | os.O_CREATE
)

// osFS is the production VFS: the real filesystem via the os package.
type osFS struct{}

// DefaultVFS returns the production filesystem.
func DefaultVFS() VFS { return osFS{} }

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) Open(path string) (File, error) { return os.Open(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// readFileVFS is os.ReadFile through a VFS.
func readFileVFS(v VFS, path string) ([]byte, error) {
	f, err := v.Open(path)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return nil, err
	}
	return raw, cerr
}

package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// wal is a region's write-ahead log: every mutation is appended before it
// reaches the memtable, so a region can be recovered by replaying the log
// over its flushed segments. A memory-only region keeps the log purely in
// buf; a disk-backed region also appends every record to a per-region
// file, which openWAL reads back at cold start. The in-memory buf always
// mirrors the file's valid prefix, so replay and size never touch disk.
//
// Record layout: a 10-byte header [1B flags][4B BE klen][4B BE vlen]
// [1B pad], the key, the value, then a 4-byte CRC32 (IEEE) over
// everything before it. The trailing CRC is what lets openWAL tell two
// failure modes apart:
//
//   - A torn tail — crash mid-append — is an incomplete final record,
//     or a complete final record whose CRC fails (the bytes landed out
//     of order). It is trimmed and recovery proceeds: the append never
//     returned success, so no acknowledged write is lost.
//   - A CRC failure in the MIDDLE of the log (valid records follow) can
//     only be at-rest damage. That is a CorruptionError naming the file
//     and offset — never a silent trim of acknowledged writes.
//
// Appends write to the file without an fsync per record — the group-
// commit tradeoff every production WAL makes; the crash tests exercise
// the torn-tail trim in openWAL rather than pretending fsync-per-record.
type wal struct {
	buf     []byte
	records int
	f       File // nil when memory-only
	path    string
	// broken is set when a failed append could not roll the FILE back
	// to its last acknowledged length: the file offset is no longer
	// trusted, so every later append must fail rather than write a
	// record after a torn fragment — that would turn an innocent torn
	// tail into mid-log corruption poisoning acknowledged writes at the
	// next open.
	broken error
}

// walRecordOverhead is the per-record framing: 10-byte header plus the
// trailing 4-byte CRC.
const walRecordOverhead = 14

// openWAL opens (or creates) a file-backed WAL through the store's VFS,
// loading the existing contents into buf. A torn final record (crash
// mid-append) is trimmed from both buf and the file; corruption earlier
// in the log fails the open with a typed CorruptionError.
func openWAL(fsys VFS, path string) (*wal, error) {
	f, err := fsys.OpenFile(path, osReadWrite, 0o644)
	if err != nil {
		return nil, &IOError{Path: path, Op: "open", Err: err}
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, &IOError{Path: path, Op: "read", Err: err}
	}
	w := &wal{f: f, path: path}
	valid, records, err := walValidPrefix(buf)
	if err != nil {
		f.Close()
		return nil, corruptionAt(path, int64(valid), err)
	}
	w.buf = buf[:valid]
	w.records = records
	if valid != len(buf) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, &IOError{Path: path, Op: "truncate", Err: err}
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, &IOError{Path: path, Op: "seek", Err: err}
	}
	return w, nil
}

// walValidPrefix scans records and returns the byte length of the valid
// prefix plus the record count. An incomplete or checksum-failing FINAL
// record is a torn tail: the prefix simply ends before it. A checksum
// failure with more log after it is at-rest corruption: the returned
// error (wrapping errCorruptBlock) names the record's offset via the
// returned prefix length.
func walValidPrefix(buf []byte) (int, int, error) {
	off, n := 0, 0
	for off+walRecordOverhead <= len(buf) {
		klen := int(binary.BigEndian.Uint32(buf[off+1 : off+5]))
		vlen := int(binary.BigEndian.Uint32(buf[off+5 : off+9]))
		end := off + walRecordOverhead + klen + vlen
		if klen < 0 || vlen < 0 || end < off || end > len(buf) {
			break // torn tail: the record was still being appended
		}
		body := buf[off : end-4]
		want := binary.BigEndian.Uint32(buf[end-4 : end])
		if crc32.ChecksumIEEE(body) != want {
			if end == len(buf) {
				break // torn tail: the final record's bytes landed partially
			}
			return off, n, corruptf("WAL record %d at offset %d fails its checksum with %d bytes of log after it", n, off, len(buf)-end)
		}
		off = end
		n++
	}
	return off, n, nil
}

// append serializes one cell mutation.
func (w *wal) append(key string, c *Cell) error {
	var hdr [10]byte
	flags := byte(0)
	if c.Tombstone {
		flags = 1
	}
	hdr[0] = flags
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(c.Value)))
	hdr[9] = 0
	if w.broken != nil {
		return w.broken
	}
	start := len(w.buf)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, c.Value...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf[start:]))
	w.buf = append(w.buf, crc[:]...)
	w.records++
	if w.f != nil {
		if _, err := w.f.Write(w.buf[start:]); err != nil {
			// The bytes may be partially down (a torn record). Roll the
			// mirror back so buf keeps describing only acknowledged
			// appends, and roll the FILE back too: a later append landing
			// after the fragment would read as mid-log corruption at the
			// next open, poisoning the acknowledged records behind it.
			w.buf = w.buf[:start]
			w.records--
			if terr := w.f.Truncate(int64(start)); terr != nil {
				w.broken = &IOError{Path: w.path, Op: "truncate", Err: terr}
			} else if _, serr := w.f.Seek(int64(start), io.SeekStart); serr != nil {
				w.broken = &IOError{Path: w.path, Op: "seek", Err: serr}
			}
			return &IOError{Path: w.path, Op: "write", Err: err}
		}
	}
	return nil
}

// size returns the log's byte length.
func (w *wal) size() uint64 { return uint64(len(w.buf)) }

// truncate discards the log after a successful flush.
func (w *wal) truncate() error {
	w.buf = nil
	w.records = 0
	if w.f != nil {
		if err := w.f.Truncate(0); err != nil {
			return &IOError{Path: w.path, Op: "truncate", Err: err}
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return &IOError{Path: w.path, Op: "seek", Err: err}
		}
	}
	return nil
}

// close releases the backing file, if any.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// replay decodes all records and hands them to apply in append order.
func (w *wal) replay(apply func(key string, value []byte, tombstone bool) error) error {
	buf := w.buf
	for off := 0; off < len(buf); {
		if off+walRecordOverhead > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL header at %d", off)
		}
		flags := buf[off]
		klen := int(binary.BigEndian.Uint32(buf[off+1 : off+5]))
		vlen := int(binary.BigEndian.Uint32(buf[off+5 : off+9]))
		off += 10
		if off+klen+vlen+4 > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL record at %d", off)
		}
		key := string(buf[off : off+klen])
		var value []byte
		if vlen > 0 {
			value = make([]byte, vlen)
			copy(value, buf[off+klen:off+klen+vlen])
		}
		off += klen + vlen + 4
		if err := apply(key, value, flags&1 == 1); err != nil {
			return err
		}
	}
	return nil
}

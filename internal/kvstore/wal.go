package kvstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// wal is a region's write-ahead log: every mutation is appended before it
// reaches the memtable, so a region can be recovered by replaying the log
// over its flushed segments. A memory-only region keeps the log purely in
// buf; a disk-backed region also appends every record to a per-region
// file, which openWAL reads back at cold start. The in-memory buf always
// mirrors the file's valid prefix, so replay and size never touch disk.
//
// Appends write to the file without an fsync per record — the group-
// commit tradeoff every production WAL makes; the crash tests exercise
// the torn-tail trim in openWAL rather than pretending fsync-per-record.
type wal struct {
	buf     []byte
	records int
	f       *os.File // nil when memory-only
	path    string
}

// openWAL opens (or creates) a file-backed WAL, loading the existing
// contents into buf. A torn final record (crash mid-append) is trimmed
// from both buf and the file.
func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{f: f, path: path}
	valid, records := walValidPrefix(buf)
	w.buf = buf[:valid]
	w.records = records
	if valid != len(buf) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// walValidPrefix scans records and returns the byte length of the valid
// prefix plus the record count.
func walValidPrefix(buf []byte) (int, int) {
	off, n := 0, 0
	for off+10 <= len(buf) {
		klen := int(binary.BigEndian.Uint32(buf[off+1 : off+5]))
		vlen := int(binary.BigEndian.Uint32(buf[off+5 : off+9]))
		if off+10+klen+vlen > len(buf) {
			break
		}
		off += 10 + klen + vlen
		n++
	}
	return off, n
}

// append serializes one cell mutation.
func (w *wal) append(key string, c *Cell) error {
	var hdr [10]byte
	flags := byte(0)
	if c.Tombstone {
		flags = 1
	}
	hdr[0] = flags
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(c.Value)))
	hdr[9] = 0
	start := len(w.buf)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, c.Value...)
	w.records++
	if w.f != nil {
		if _, err := w.f.Write(w.buf[start:]); err != nil {
			return err
		}
	}
	return nil
}

// size returns the log's byte length.
func (w *wal) size() uint64 { return uint64(len(w.buf)) }

// truncate discards the log after a successful flush.
func (w *wal) truncate() error {
	w.buf = nil
	w.records = 0
	if w.f != nil {
		if err := w.f.Truncate(0); err != nil {
			return err
		}
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	return nil
}

// close releases the backing file, if any.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// replay decodes all records and hands them to apply in append order.
func (w *wal) replay(apply func(key string, value []byte, tombstone bool) error) error {
	buf := w.buf
	for off := 0; off < len(buf); {
		if off+10 > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL header at %d", off)
		}
		flags := buf[off]
		klen := int(binary.BigEndian.Uint32(buf[off+1 : off+5]))
		vlen := int(binary.BigEndian.Uint32(buf[off+5 : off+9]))
		off += 10
		if off+klen+vlen > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL record at %d", off)
		}
		key := string(buf[off : off+klen])
		var value []byte
		if vlen > 0 {
			value = make([]byte, vlen)
			copy(value, buf[off+klen:off+klen+vlen])
		}
		off += klen + vlen
		if err := apply(key, value, flags&1 == 1); err != nil {
			return err
		}
	}
	return nil
}

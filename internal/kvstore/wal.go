package kvstore

import (
	"encoding/binary"
	"fmt"
)

// wal is a region's write-ahead log: every mutation is appended before it
// reaches the memtable, so a region can be recovered by replaying the log
// over its flushed segments. The log lives in memory (the whole store is
// embedded) but uses a real binary encoding so recovery is a genuine
// deserialization path, exercised by the failure-injection tests.
type wal struct {
	buf     []byte
	records int
}

// append serializes one cell mutation.
func (w *wal) append(key string, c *Cell) {
	var hdr [10]byte
	flags := byte(0)
	if c.Tombstone {
		flags = 1
	}
	hdr[0] = flags
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[5:9], uint32(len(c.Value)))
	hdr[9] = 0
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, c.Value...)
	w.records++
}

// size returns the log's byte length.
func (w *wal) size() uint64 { return uint64(len(w.buf)) }

// truncate discards the log after a successful flush.
func (w *wal) truncate() {
	w.buf = nil
	w.records = 0
}

// replay decodes all records and hands them to apply in append order.
func (w *wal) replay(apply func(key string, value []byte, tombstone bool) error) error {
	buf := w.buf
	for off := 0; off < len(buf); {
		if off+10 > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL header at %d", off)
		}
		flags := buf[off]
		klen := int(binary.BigEndian.Uint32(buf[off+1 : off+5]))
		vlen := int(binary.BigEndian.Uint32(buf[off+5 : off+9]))
		off += 10
		if off+klen+vlen > len(buf) {
			return fmt.Errorf("kvstore: truncated WAL record at %d", off)
		}
		key := string(buf[off : off+klen])
		var value []byte
		if vlen > 0 {
			value = make([]byte, vlen)
			copy(value, buf[off+klen:off+klen+vlen])
		}
		off += klen + vlen
		if err := apply(key, value, flags&1 == 1); err != nil {
			return err
		}
	}
	return nil
}

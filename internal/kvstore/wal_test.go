package kvstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// walFixture builds a WAL file at path containing n acknowledged
// records, returning the raw bytes written.
func walFixture(t *testing.T, path string, n int) []byte {
	t.Helper()
	w, err := openWAL(DefaultVFS(), path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := &Cell{Value: []byte{byte(i), byte(i >> 8), 0xab}}
		if err := w.append(cellKey("row", "cf", "q", int64(i+1), uint64(i+1)), c); err != nil {
			t.Fatal(err)
		}
	}
	buf := append([]byte(nil), w.buf...)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	return buf
}

// replayCount reopens the WAL and counts replayed records.
func replayCount(t *testing.T, path string) int {
	t.Helper()
	w, err := openWAL(DefaultVFS(), path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	n := 0
	if err := w.replay(func(string, []byte, bool) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != w.records {
		t.Fatalf("replayed %d records, header count says %d", n, w.records)
	}
	return n
}

// TestWALTornTailIncompleteRecord pins the crash-mid-append contract: an
// incomplete final record (the write never returned success) is trimmed
// and recovery proceeds with every acknowledged record intact.
func TestWALTornTailIncompleteRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	buf := walFixture(t, path, 5)
	// Tear the tail: half of a sixth record's bytes land.
	torn := append(append([]byte(nil), buf...), buf[:len(buf)/11]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, path); got != 5 {
		t.Fatalf("recovered %d records, want 5", got)
	}
	// The trim must persist: the file now holds exactly the valid prefix.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(buf)) {
		t.Errorf("file is %d bytes after trim, want %d", fi.Size(), len(buf))
	}
}

// TestWALTornTailFinalRecordCRC pins the other torn-tail shape: the
// final record is complete-length but its bytes landed out of order, so
// its CRC fails. That record was never acknowledged either — trim it.
func TestWALTornTailFinalRecordCRC(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	buf := walFixture(t, path, 5)
	mut := append([]byte(nil), buf...)
	mut[len(mut)-1] ^= 0xff // corrupt the final record's CRC
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, path); got != 4 {
		t.Fatalf("recovered %d records, want 4 (torn final record trimmed)", got)
	}
}

// TestWALMidLogCorruptionTyped pins the at-rest damage contract: a CRC
// failure with valid log after it cannot be a torn tail, so the open
// fails loudly with a CorruptionError naming the file and offset —
// never a silent trim of acknowledged writes.
func TestWALMidLogCorruptionTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	buf := walFixture(t, path, 5)
	mut := append([]byte(nil), buf...)
	mut[walRecordOverhead+2] ^= 0x40 // rot a byte inside record 0's key
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := openWAL(DefaultVFS(), path)
	if err == nil {
		t.Fatal("mid-log corruption opened cleanly")
	}
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("err = %v, want ErrCorruption", err)
	}
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CorruptionError", err)
	}
	if ce.Path != path {
		t.Errorf("CorruptionError.Path = %q, want %q", ce.Path, path)
	}
	if ce.Offset != 0 {
		t.Errorf("CorruptionError.Offset = %d, want 0 (first record)", ce.Offset)
	}
}

// TestWALValidPrefixHostileLengths feeds headers whose length fields
// point past the buffer or wrap around; both are torn tails, not
// corruption, because a record that never fully landed proves nothing
// about the media.
func TestWALValidPrefixHostileLengths(t *testing.T) {
	rec := func(key string, val []byte) []byte {
		var hdr [10]byte
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(key)))
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(val)))
		b := append(hdr[:], key...)
		b = append(b, val...)
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b))
		return append(b, crc[:]...)
	}
	good := rec("k", []byte("v"))
	cases := map[string][]byte{
		"huge klen":    append(append([]byte(nil), good...), 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1, 0),
		"wraparound":   append(append([]byte(nil), good...), 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0),
		"header stub":  append(append([]byte(nil), good...), 0, 0, 0),
		"empty buffer": nil,
	}
	for name, buf := range cases {
		valid, n, err := walValidPrefix(buf)
		if err != nil {
			t.Errorf("%s: unexpected error %v", name, err)
		}
		wantValid, wantN := len(good), 1
		if name == "empty buffer" {
			wantValid, wantN = 0, 0
		}
		if valid != wantValid || n != wantN {
			t.Errorf("%s: prefix = (%d, %d), want (%d, %d)", name, valid, n, wantValid, wantN)
		}
	}
}

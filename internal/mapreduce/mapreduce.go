// Package mapreduce implements the Hadoop-style execution framework the
// paper's baselines and index builders run on: locality-aware map tasks
// (one per table region, scheduled on the region's node), an optional
// combiner, a sort-shuffle to a configurable number of reducers, and
// map-only jobs whose output is written directly into the NoSQL store
// (Section 4.1.1: "a special type of MapReduce job where there are no
// reducers and the output of mappers is written directly into the NoSQL
// store").
//
// The runner charges the cluster's sim.Metrics the way Hadoop costs
// accrue: job and task startup overheads, local disk scans at the
// mappers, network bytes for the shuffle and for store writes, and CPU
// per key-value touched. Map tasks read their region from local disk, so
// scanning is NOT network traffic — the property that makes IJLMR's
// bandwidth profile (only local top-k lists cross the network) reproduce.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bloom"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// KV is an intermediate or output key-value pair.
type KV struct {
	Key   string
	Value []byte
}

func (kv KV) size() uint64 { return uint64(len(kv.Key) + len(kv.Value) + 16) }

// Context is the interface tasks use to emit output, write to the store,
// and bump counters.
type Context interface {
	// Emit sends a KV to the shuffle (mappers) or job output (reducers).
	Emit(key string, value []byte)
	// WriteCell buffers a direct store write (map-only index builders).
	WriteCell(table string, cell kvstore.Cell)
	// Counter adds delta to a named job counter.
	Counter(name string, delta int64)
}

// Mapper transforms one input row into intermediate KVs.
type Mapper interface {
	Map(row *kvstore.Row, ctx Context) error
}

// Finisher is an optional Mapper extension: Finish runs after the task's
// last input row, letting stateful mappers emit accumulated results (the
// IJLMR query mappers emit their local top-k lists this way, Algorithm 2:
// "mappers ... emit their final top-k list when their input data is
// exhausted").
type Finisher interface {
	Finish(ctx Context) error
}

// Reducer folds all values of one intermediate key.
type Reducer interface {
	Reduce(key string, values [][]byte, ctx Context) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(row *kvstore.Row, ctx Context) error

// Map implements Mapper.
func (f MapperFunc) Map(row *kvstore.Row, ctx Context) error { return f(row, ctx) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key string, values [][]byte, ctx Context) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, ctx Context) error {
	return f(key, values, ctx)
}

// Job describes one MapReduce execution.
type Job struct {
	Name    string
	Cluster *kvstore.Cluster
	// Input selects the rows fed to the mappers. Caching is ignored —
	// mappers stream their region locally.
	Input kvstore.Scan
	// Inputs, when non-empty, replaces Input/Mapper with several
	// (table, mapper) pairs — Hadoop's MultipleInputs, needed by the
	// Hive/Pig join jobs that map two tables into one shuffle.
	Inputs []TableInput
	// Mapper is required unless Inputs is set. If the mapper keeps
	// per-task state, set MapperFactory instead.
	Mapper Mapper
	// MapperFactory, when set, creates a fresh Mapper per map task
	// (tasks for different regions run concurrently and must not share
	// mutable state).
	MapperFactory func() Mapper
	// Combiner, if set, runs on each mapper's output group-by-key
	// before the shuffle (Pig's local top-k lists use this).
	Combiner Reducer
	// Reducer, if nil, makes this a map-only job.
	Reducer Reducer
	// NumReducers defaults to 1.
	NumReducers int
	// Partitioner routes intermediate keys to reducers; default is
	// hash(key) mod n. Pig's ORDER BY installs a range partitioner.
	Partitioner func(key string, n int) int
}

// Result is a completed job's output.
type Result struct {
	// Output collects reducer emissions (mapper emissions for map-only
	// jobs), in reducer-then-key order.
	Output []KV
	// Counters aggregates task counters.
	Counters map[string]int64
	// MapInputRows / MapInputCells describe the scanned input.
	MapInputRows  uint64
	MapInputCells uint64
	// ShuffleBytes crossed the network between map and reduce.
	ShuffleBytes uint64
	// StoreWriteBytes were written into the NoSQL store by tasks.
	StoreWriteBytes uint64
	// PeakReducerMemory is the largest input buffered by any single
	// reduce task (the paper reports reducer memory footprints for the
	// index builders).
	PeakReducerMemory uint64
	// PeakReduceGroup is the largest single reduce group (one key's
	// values) — a streaming reducer's working set, e.g. one BFHM bucket
	// ("each reducer operates on the mapped tuples for one BFHM bucket
	// at a time", Section 5.1).
	PeakReduceGroup uint64
	// SimTime is the job's simulated wall-clock duration.
	SimTime time.Duration
}

// taskContext implements Context for one task.
type taskContext struct {
	emitted  []KV
	writes   map[string][]kvstore.Cell
	counters map[string]int64
}

func newTaskContext() *taskContext {
	return &taskContext{writes: map[string][]kvstore.Cell{}, counters: map[string]int64{}}
}

// Emit implements Context.
func (t *taskContext) Emit(key string, value []byte) {
	v := append([]byte(nil), value...)
	t.emitted = append(t.emitted, KV{Key: key, Value: v})
}

// WriteCell implements Context.
func (t *taskContext) WriteCell(table string, cell kvstore.Cell) {
	t.writes[table] = append(t.writes[table], cell)
}

// Counter implements Context.
func (t *taskContext) Counter(name string, delta int64) { t.counters[name] += delta }

// TableInput pairs an input table scan with the mapper that processes it
// (Hadoop MultipleInputs).
type TableInput struct {
	Scan kvstore.Scan
	// Mapper, or MapperFactory for stateful per-task mappers.
	Mapper        Mapper
	MapperFactory func() Mapper
}

// split is one map task: a region plus the mapper that consumes it.
type split struct {
	region *kvstore.Region
	scan   kvstore.Scan
	mapper Mapper
}

// Run executes the job synchronously and returns its result.
func Run(job *Job) (*Result, error) {
	if job.Cluster == nil {
		return nil, fmt.Errorf("mapreduce: job %q needs a cluster", job.Name)
	}
	inputs := job.Inputs
	if len(inputs) == 0 {
		if job.Mapper == nil && job.MapperFactory == nil {
			return nil, fmt.Errorf("mapreduce: job %q needs a mapper", job.Name)
		}
		inputs = []TableInput{{Scan: job.Input, Mapper: job.Mapper, MapperFactory: job.MapperFactory}}
	}
	if job.NumReducers < 1 {
		job.NumReducers = 1
	}
	if job.Partitioner == nil {
		job.Partitioner = HashPartitioner
	}
	var splits []split
	for _, in := range inputs {
		regions, err := job.Cluster.TableRegions(in.Scan.Table)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
		}
		for _, r := range regions {
			m := in.Mapper
			if in.MapperFactory != nil {
				m = in.MapperFactory()
			}
			if m == nil {
				return nil, fmt.Errorf("mapreduce: job %q: input %q has no mapper", job.Name, in.Scan.Table)
			}
			splits = append(splits, split{region: r, scan: in.Scan, mapper: m})
		}
	}

	profile := job.Cluster.Profile()
	metrics := job.Cluster.Metrics()
	res := &Result{Counters: map[string]int64{}}
	mapTimer := sim.NewParallelTimer(profile.Nodes)

	// ---- Map phase: one task per region, on the region's node. ----
	type mapOut struct {
		ctx   *taskContext
		stats kvstore.OpStats
		rows  uint64
		node  int
		err   error
	}
	outs := make([]mapOut, len(splits))
	var wg sync.WaitGroup
	for i, sp := range splits {
		wg.Add(1)
		go func(i int, sp split) {
			defer wg.Done()
			ctx := newTaskContext()
			// Cooperative cancellation: LocalScan bypasses the metered
			// client (and so its guard), so the task checks the job
			// cluster's interrupt itself — before the scan and
			// periodically through the mapper loop.
			if err := job.Cluster.CheckInterrupt(); err != nil {
				outs[i] = mapOut{err: err}
				return
			}
			rows, stats, err := sp.region.LocalScan(sp.scan.StartRow, sp.scan.StopRow, 0,
				sp.scan.Families, sp.scan.ReadTs, sp.scan.Filter)
			if err != nil {
				outs[i] = mapOut{err: err}
				return
			}
			for r := 0; r < len(rows); r++ {
				if r%1024 == 0 {
					if err := job.Cluster.CheckInterrupt(); err != nil {
						outs[i] = mapOut{err: err}
						return
					}
				}
				if err := sp.mapper.Map(&rows[r], ctx); err != nil {
					outs[i] = mapOut{err: err}
					return
				}
			}
			if fin, ok := sp.mapper.(Finisher); ok {
				if err := fin.Finish(ctx); err != nil {
					outs[i] = mapOut{err: err}
					return
				}
			}
			outs[i] = mapOut{ctx: ctx, stats: stats, rows: uint64(len(rows)), node: sp.region.Node()}
		}(i, sp)
	}
	wg.Wait()

	var allWrites []storeWrite
	var mapEmissions [][]KV
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, fmt.Errorf("mapreduce: job %q map task %d: %w", job.Name, i, o.err)
		}
		// Charge the map task to its node: startup + local scan + CPU.
		taskTime := profile.MRTaskStartup +
			profile.ScanTime(o.stats.BytesRead) +
			profile.CPUTime(o.stats.CellsExamined+uint64(len(o.ctx.emitted)))
		mapTimer.AssignTo(o.node, taskTime)
		metrics.AddDiskRead(o.stats.BytesRead)
		metrics.AddKVReads(o.stats.CellsExamined)
		res.MapInputRows += o.rows
		res.MapInputCells += o.stats.CellsExamined
		for name, v := range o.ctx.counters {
			res.Counters[name] += v
		}

		emissions := o.ctx.emitted
		if job.Combiner != nil && len(emissions) > 0 {
			combined, err := combine(job.Combiner, emissions, res.Counters)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: job %q combiner: %w", job.Name, err)
			}
			emissions = combined
		}
		mapEmissions = append(mapEmissions, emissions)
		for table, cells := range o.ctx.writes {
			allWrites = append(allWrites, storeWrite{table: table, cells: cells})
		}
	}

	// ---- Direct store writes (map-only jobs). ----
	sort.Slice(allWrites, func(i, j int) bool { return allWrites[i].table < allWrites[j].table })
	for _, w := range allWrites {
		bytes, err := job.Cluster.LocalWrite(w.table, w.cells)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q store write: %w", job.Name, err)
		}
		res.StoreWriteBytes += bytes
		metrics.AddKVWrites(uint64(len(w.cells)))
	}
	// Store writes cross the network (rows hash anywhere in the table).
	metrics.AddNetwork(res.StoreWriteBytes)

	jobTime := profile.MRJobStartup + mapTimer.Makespan() +
		profile.TransferTime(res.StoreWriteBytes)

	// ---- Shuffle + reduce (skipped for map-only jobs). ----
	if job.Reducer != nil {
		partitions := make([]map[string][][]byte, job.NumReducers)
		order := make([][]string, job.NumReducers)
		for p := range partitions {
			partitions[p] = map[string][][]byte{}
		}
		for _, emissions := range mapEmissions {
			for _, kv := range emissions {
				p := job.Partitioner(kv.Key, job.NumReducers)
				if p < 0 || p >= job.NumReducers {
					p = 0
				}
				if _, seen := partitions[p][kv.Key]; !seen {
					order[p] = append(order[p], kv.Key)
				}
				partitions[p][kv.Key] = append(partitions[p][kv.Key], kv.Value)
				res.ShuffleBytes += kv.size()
			}
		}
		metrics.AddNetwork(res.ShuffleBytes)

		reduceTimer := sim.NewParallelTimer(profile.Nodes)
		type redOut struct {
			ctx       *taskContext
			taskInput uint64
			peakGroup uint64
			kvCount   uint64
			err       error
		}
		redOuts := make([]redOut, job.NumReducers)
		var rwg sync.WaitGroup
		for p := 0; p < job.NumReducers; p++ {
			rwg.Add(1)
			go func(p int) {
				defer rwg.Done()
				ctx := newTaskContext()
				keys := order[p]
				sort.Strings(keys)
				var taskInput, peakGroup uint64
				var kvCount uint64
				for ki, k := range keys {
					if ki%1024 == 0 {
						if err := job.Cluster.CheckInterrupt(); err != nil {
							redOuts[p] = redOut{err: err}
							return
						}
					}
					vals := partitions[p][k]
					var groupBytes uint64
					for _, v := range vals {
						groupBytes += uint64(len(k) + len(v) + 16)
					}
					taskInput += groupBytes
					if groupBytes > peakGroup {
						peakGroup = groupBytes
					}
					kvCount += uint64(len(vals))
					if err := job.Reducer.Reduce(k, vals, ctx); err != nil {
						redOuts[p] = redOut{err: err}
						return
					}
				}
				redOuts[p] = redOut{ctx: ctx, taskInput: taskInput, peakGroup: peakGroup, kvCount: kvCount}
			}(p)
		}
		rwg.Wait()

		var redWrites []storeWrite
		for p := range redOuts {
			if redOuts[p].err != nil {
				return nil, fmt.Errorf("mapreduce: job %q reduce task %d: %w", job.Name, p, redOuts[p].err)
			}
			ctx := redOuts[p].ctx
			if redOuts[p].taskInput > res.PeakReducerMemory {
				res.PeakReducerMemory = redOuts[p].taskInput
			}
			if redOuts[p].peakGroup > res.PeakReduceGroup {
				res.PeakReduceGroup = redOuts[p].peakGroup
			}
			reduceTimer.AssignTo(p, profile.MRTaskStartup+
				profile.CPUTime(redOuts[p].kvCount+uint64(len(ctx.emitted))))
			res.Output = append(res.Output, ctx.emitted...)
			for name, v := range ctx.counters {
				res.Counters[name] += v
			}
			for table, cells := range ctx.writes {
				redWrites = append(redWrites, storeWrite{table: table, cells: cells})
			}
		}
		sort.Slice(redWrites, func(i, j int) bool { return redWrites[i].table < redWrites[j].table })
		var redWriteBytes uint64
		for _, w := range redWrites {
			bytes, err := job.Cluster.LocalWrite(w.table, w.cells)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: job %q reduce store write: %w", job.Name, err)
			}
			redWriteBytes += bytes
			metrics.AddKVWrites(uint64(len(w.cells)))
		}
		res.StoreWriteBytes += redWriteBytes
		metrics.AddNetwork(redWriteBytes)

		jobTime += profile.TransferTime(res.ShuffleBytes) +
			reduceTimer.Makespan() +
			profile.TransferTime(redWriteBytes)
	} else {
		// Map-only: emissions become the job output directly, shipped
		// to the client.
		for _, emissions := range mapEmissions {
			res.Output = append(res.Output, emissions...)
		}
		var outBytes uint64
		for _, kv := range res.Output {
			outBytes += kv.size()
		}
		metrics.AddNetwork(outBytes)
		jobTime += profile.TransferTime(outBytes)
	}

	metrics.Advance(jobTime)
	res.SimTime = jobTime
	return res, nil
}

type storeWrite struct {
	table string
	cells []kvstore.Cell
}

// combine groups one mapper's emissions by key and runs the combiner,
// returning its (usually much smaller) output.
func combine(c Reducer, emissions []KV, counters map[string]int64) ([]KV, error) {
	grouped := map[string][][]byte{}
	var order []string
	for _, kv := range emissions {
		if _, seen := grouped[kv.Key]; !seen {
			order = append(order, kv.Key)
		}
		grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
	}
	sort.Strings(order)
	ctx := newTaskContext()
	for _, k := range order {
		if err := c.Reduce(k, grouped[k], ctx); err != nil {
			return nil, err
		}
	}
	for name, v := range ctx.counters {
		counters[name] += v
	}
	return ctx.emitted, nil
}

// HashPartitioner is the default intermediate-key router.
func HashPartitioner(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(bloom.Hash64String(key) % uint64(n))
}

// RangePartitioner builds a partitioner from sorted split points
// (quantiles): keys below splits[0] go to partition 0, etc. Pig's
// ORDER BY uses one built from a sampling job (Section 3.1).
func RangePartitioner(splits []string) func(string, int) int {
	sorted := append([]string(nil), splits...)
	sort.Strings(sorted)
	return func(key string, n int) int {
		// Partition = number of split points <= key (upper bound).
		p := sort.Search(len(sorted), func(i int) bool { return sorted[i] > key })
		if p >= n {
			p = n - 1
		}
		return p
	}
}

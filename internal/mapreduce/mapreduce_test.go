package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

// wordTable loads a table where each row holds one word in cf:w.
func wordTable(t *testing.T, c *kvstore.Cluster, words []string) {
	t.Helper()
	if _, err := c.CreateTable("words", []string{"cf"}, []string{"m"}); err != nil {
		t.Fatal(err)
	}
	var cells []kvstore.Cell
	for i, w := range words {
		cells = append(cells, kvstore.Cell{
			Row: fmt.Sprintf("r%04d", i), Family: "cf", Qualifier: "w", Value: []byte(w),
		})
	}
	if err := c.BatchPut("words", cells); err != nil {
		t.Fatal(err)
	}
}

func wordCountJob(c *kvstore.Cluster, combiner bool) *Job {
	j := &Job{
		Name:    "wordcount",
		Cluster: c,
		Input:   kvstore.Scan{Table: "words"},
		Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
			ctx.Emit(string(row.Cells[0].Value), []byte("1"))
			ctx.Counter("mapped", 1)
			return nil
		}),
		Reducer: ReducerFunc(func(key string, values [][]byte, ctx Context) error {
			n := 0
			for _, v := range values {
				x, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				n += x
			}
			ctx.Emit(key, []byte(strconv.Itoa(n)))
			return nil
		}),
		NumReducers: 3,
	}
	if combiner {
		j.Combiner = j.Reducer
	}
	return j
}

func TestWordCount(t *testing.T) {
	c := testCluster(t)
	words := []string{"a", "b", "a", "c", "b", "a", "z", "m", "m"}
	wordTable(t, c, words)
	res, err := Run(wordCountJob(c, false))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Output {
		got[kv.Key] = string(kv.Value)
	}
	want := map[string]string{"a": "3", "b": "2", "c": "1", "z": "1", "m": "2"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %s, want %s", k, got[k], v)
		}
	}
	if res.Counters["mapped"] != int64(len(words)) {
		t.Errorf("mapped counter = %d, want %d", res.Counters["mapped"], len(words))
	}
	if res.MapInputRows != uint64(len(words)) {
		t.Errorf("MapInputRows = %d, want %d", res.MapInputRows, len(words))
	}
	if res.SimTime <= 0 {
		t.Error("job must consume simulated time")
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	mk := func() *kvstore.Cluster {
		c := testCluster(t)
		var words []string
		for i := 0; i < 500; i++ {
			words = append(words, fmt.Sprintf("w%d", i%5))
		}
		wordTable(t, c, words)
		return c
	}
	c1 := mk()
	plain, err := Run(wordCountJob(c1, false))
	if err != nil {
		t.Fatal(err)
	}
	c2 := mk()
	combined, err := Run(wordCountJob(c2, true))
	if err != nil {
		t.Fatal(err)
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
	// Results must agree.
	sum := func(r *Result) map[string]string {
		m := map[string]string{}
		for _, kv := range r.Output {
			m[kv.Key] = string(kv.Value)
		}
		return m
	}
	m1, m2 := sum(plain), sum(combined)
	if fmt.Sprint(m1) != fmt.Sprint(m2) {
		t.Errorf("combiner changed results: %v vs %v", m1, m2)
	}
}

func TestMapOnlyJobWritesStore(t *testing.T) {
	c := testCluster(t)
	wordTable(t, c, []string{"x", "y", "z"})
	if _, err := c.CreateTable("out", []string{"cf"}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := Run(&Job{
		Name:    "reverse",
		Cluster: c,
		Input:   kvstore.Scan{Table: "words"},
		Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
			ctx.WriteCell("out", kvstore.Cell{
				Row: string(row.Cells[0].Value), Family: "cf", Qualifier: "src",
				Value: []byte(row.Key),
			})
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StoreWriteBytes == 0 {
		t.Error("no store bytes recorded")
	}
	rows, err := c.ScanAll(kvstore.Scan{Table: "out", Caching: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("out rows = %d, want 3", len(rows))
	}
}

func TestMapOnlyEmissionsAreOutput(t *testing.T) {
	c := testCluster(t)
	wordTable(t, c, []string{"p", "q"})
	res, err := Run(&Job{
		Name:    "emit",
		Cluster: c,
		Input:   kvstore.Scan{Table: "words"},
		Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
			ctx.Emit(row.Key, row.Cells[0].Value)
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 {
		t.Fatalf("output = %d KVs, want 2", len(res.Output))
	}
}

func TestMapErrorPropagates(t *testing.T) {
	c := testCluster(t)
	wordTable(t, c, []string{"boom"})
	_, err := Run(&Job{
		Name:    "failing",
		Cluster: c,
		Input:   kvstore.Scan{Table: "words"},
		Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
			return fmt.Errorf("mapper exploded on %s", row.Key)
		}),
	})
	if err == nil {
		t.Fatal("map error swallowed")
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	c := testCluster(t)
	wordTable(t, c, []string{"boom"})
	_, err := Run(&Job{
		Name:    "failing",
		Cluster: c,
		Input:   kvstore.Scan{Table: "words"},
		Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
			ctx.Emit("k", []byte("v"))
			return nil
		}),
		Reducer: ReducerFunc(func(key string, values [][]byte, ctx Context) error {
			return fmt.Errorf("reducer exploded")
		}),
	})
	if err == nil {
		t.Fatal("reduce error swallowed")
	}
}

func TestJobValidation(t *testing.T) {
	if _, err := Run(&Job{Name: "nil"}); err == nil {
		t.Error("job without cluster/mapper accepted")
	}
	c := testCluster(t)
	_, err := Run(&Job{
		Name: "notable", Cluster: c,
		Input:  kvstore.Scan{Table: "missing"},
		Mapper: MapperFunc(func(*kvstore.Row, Context) error { return nil }),
	})
	if err == nil {
		t.Error("missing input table accepted")
	}
}

func TestHashPartitionerStableAndInRange(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		p := HashPartitioner(k, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		if p != HashPartitioner(k, 7) {
			t.Fatal("partitioner not deterministic")
		}
	}
	if HashPartitioner("x", 1) != 0 {
		t.Error("single partition must be 0")
	}
}

func TestRangePartitioner(t *testing.T) {
	part := RangePartitioner([]string{"h", "p"})
	cases := map[string]int{"a": 0, "h": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := part(k, 3); got != want {
			t.Errorf("part(%q) = %d, want %d", k, got, want)
		}
	}
	// More partitions than splits: clamp.
	if got := part("zzz", 2); got != 1 {
		t.Errorf("clamped partition = %d, want 1", got)
	}
}

func TestShuffleAndLocalityAccounting(t *testing.T) {
	c := testCluster(t)
	var words []string
	for i := 0; i < 1000; i++ {
		words = append(words, fmt.Sprintf("w%04d", i))
	}
	wordTable(t, c, words)
	before := c.Metrics().Snapshot()
	res, err := Run(wordCountJob(c, false))
	if err != nil {
		t.Fatal(err)
	}
	delta := c.Metrics().Snapshot().Sub(before)
	// All input cells are read (dollar cost) but reading is local:
	// network carries only the shuffle.
	if delta.KVReads < 1000 {
		t.Errorf("KVReads = %d, want >= 1000 (full scan)", delta.KVReads)
	}
	if delta.NetworkBytes != res.ShuffleBytes {
		t.Errorf("network = %d, want shuffle only = %d", delta.NetworkBytes, res.ShuffleBytes)
	}
	if delta.SimTime < c.Profile().MRJobStartup {
		t.Errorf("job time %v below job startup %v", delta.SimTime, c.Profile().MRJobStartup)
	}
}

func TestDeterministicOutput(t *testing.T) {
	run := func() []KV {
		c := testCluster(t)
		var words []string
		for i := 0; i < 200; i++ {
			words = append(words, fmt.Sprintf("w%d", i%17))
		}
		wordTable(t, c, words)
		res, err := Run(wordCountJob(c, true))
		if err != nil {
			t.Fatal(err)
		}
		out := append([]KV(nil), res.Output...)
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		return out
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("two identical runs produced different output")
	}
}

func TestPeakReducerMemoryTracked(t *testing.T) {
	c := testCluster(t)
	var words []string
	for i := 0; i < 100; i++ {
		words = append(words, "same") // all to one reducer group
	}
	wordTable(t, c, words)
	res, err := Run(wordCountJob(c, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakReducerMemory == 0 {
		t.Error("peak reducer memory not tracked")
	}
}

func BenchmarkWordCount1k(b *testing.B) {
	c := testCluster(b)
	c.CreateTable("words", []string{"cf"}, []string{"m"})
	var cells []kvstore.Cell
	for i := 0; i < 1000; i++ {
		cells = append(cells, kvstore.Cell{
			Row: fmt.Sprintf("r%04d", i), Family: "cf", Qualifier: "w",
			Value: []byte(fmt.Sprintf("w%d", i%50)),
		})
	}
	c.BatchPut("words", cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wordCountJob(c, true)); err != nil {
			b.Fatal(err)
		}
	}
}

// testCluster builds an LC-profile cluster, failing the test on setup
// errors (disk-mode scratch dir creation).
func testCluster(t testing.TB) *kvstore.Cluster {
	t.Helper()
	c, err := kvstore.NewCluster(sim.LC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

package mapreduce

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
)

// TestMultipleInputs exercises Hadoop-style MultipleInputs: two tables
// mapped by different mappers into one shuffle (the Hive/Pig join jobs'
// shape).
func TestMultipleInputs(t *testing.T) {
	c := testCluster(t)
	for _, tbl := range []string{"users", "orders"} {
		if _, err := c.CreateTable(tbl, []string{"cf"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Put("users", kvstore.Cell{Row: "u1", Family: "cf", Qualifier: "name", Value: []byte("ada")})
	c.Put("users", kvstore.Cell{Row: "u2", Family: "cf", Qualifier: "name", Value: []byte("bob")})
	c.Put("orders", kvstore.Cell{Row: "o1", Family: "cf", Qualifier: "user", Value: []byte("u1")})
	c.Put("orders", kvstore.Cell{Row: "o2", Family: "cf", Qualifier: "user", Value: []byte("u1")})
	c.Put("orders", kvstore.Cell{Row: "o3", Family: "cf", Qualifier: "user", Value: []byte("u2")})

	res, err := Run(&Job{
		Name:    "join",
		Cluster: c,
		Inputs: []TableInput{
			{
				Scan: kvstore.Scan{Table: "users"},
				Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
					ctx.Emit(row.Key, append([]byte("U:"), row.Cells[0].Value...))
					return nil
				}),
			},
			{
				Scan: kvstore.Scan{Table: "orders"},
				Mapper: MapperFunc(func(row *kvstore.Row, ctx Context) error {
					ctx.Emit(string(row.Cells[0].Value), []byte("O:"+row.Key))
					return nil
				}),
			},
		},
		Reducer: ReducerFunc(func(key string, values [][]byte, ctx Context) error {
			var user string
			var orders int
			for _, v := range values {
				switch v[0] {
				case 'U':
					user = string(v[2:])
				case 'O':
					orders++
				}
			}
			ctx.Emit(key, []byte(fmt.Sprintf("%s:%d", user, orders)))
			return nil
		}),
		NumReducers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Output {
		got[kv.Key] = string(kv.Value)
	}
	if got["u1"] != "ada:2" || got["u2"] != "bob:1" {
		t.Fatalf("join output = %v", got)
	}
}

// TestMultipleInputsStatefulFactories gives each input its own mapper
// factory and checks per-task isolation.
func TestMultipleInputsStatefulFactories(t *testing.T) {
	c := testCluster(t)
	if _, err := c.CreateTable("t", []string{"cf"}, []string{"m"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Put("t", kvstore.Cell{Row: fmt.Sprintf("%c%02d", 'a'+i%2*12, i), Family: "cf", Qualifier: "v", Value: []byte{1}})
	}
	type counting struct{ n int }
	makeMapper := func() Mapper {
		st := &counting{}
		return MapperFunc(func(row *kvstore.Row, ctx Context) error {
			st.n++
			ctx.Counter("rows", 1)
			if st.n > 20 {
				return fmt.Errorf("mapper state shared across tasks")
			}
			return nil
		})
	}
	res, err := Run(&Job{
		Name:    "stateful",
		Cluster: c,
		Inputs: []TableInput{
			{Scan: kvstore.Scan{Table: "t"}, MapperFactory: makeMapper},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["rows"] != 20 {
		t.Fatalf("rows counter = %d", res.Counters["rows"])
	}
}

// TestFinisherHook verifies Finish runs once per task after its rows.
func TestFinisherHook(t *testing.T) {
	c := testCluster(t)
	if _, err := c.CreateTable("t", []string{"cf"}, []string{"k10"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Put("t", kvstore.Cell{Row: fmt.Sprintf("k%02d", i), Family: "cf", Qualifier: "v", Value: []byte{1}})
	}
	res, err := Run(&Job{
		Name:          "finisher",
		Cluster:       c,
		Input:         kvstore.Scan{Table: "t"},
		MapperFactory: func() Mapper { return &finisherMapper{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two regions -> two tasks -> two "done" emissions, each carrying
	// that task's row count.
	if len(res.Output) != 2 {
		t.Fatalf("finish emissions = %d, want 2", len(res.Output))
	}
	total := 0
	for _, kv := range res.Output {
		n := 0
		fmt.Sscanf(string(kv.Value), "%d", &n)
		total += n
	}
	if total != 20 {
		t.Fatalf("summed task rows = %d, want 20", total)
	}
}

type finisherMapper struct{ rows int }

func (m *finisherMapper) Map(row *kvstore.Row, ctx Context) error {
	m.rows++
	return nil
}

func (m *finisherMapper) Finish(ctx Context) error {
	ctx.Emit("done", []byte(fmt.Sprint(m.rows)))
	return nil
}

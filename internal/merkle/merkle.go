// Package merkle builds and diffs Merkle trees over row digests for
// replica anti-entropy.
//
// A tree summarizes one table replica's live contents. Rows are mapped
// onto a fixed number of leaves by HASH-TOKEN RANGE — leaf i covers the
// i-th equal slice of the 64-bit hash space of row keys (the Cassandra
// token-range idiom) — so two replicas of the same table always bucket
// a given row into the same leaf regardless of which rows the other
// replica holds, and a leaf identifies a well-defined repairable key
// population. Within a leaf, per-row digests combine order-independently
// (XOR plus a row count), so building needs no sort and streaming order
// does not matter. Above the leaves sits an ordinary binary hash tree;
// comparing two replicas' trees descends from the root and touches only
// the subtrees that differ, returning the divergent leaf indexes — the
// exact repair work list.
//
// Digests cover row keys, column coordinates, timestamps, and values,
// so a replica that missed a write, applied a torn one, or holds a
// bit-rotted value diverges; tombstoned (dead) data is invisible, so a
// repair that re-deletes an extra row converges even though the
// repairing tombstone's timestamp is local.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Digest is a 32-byte SHA-256 digest.
type Digest [32]byte

// IsZero reports whether the digest is the zero value (an empty leaf).
func (d Digest) IsZero() bool { return d == Digest{} }

// xor combines two digests order-independently.
func (d Digest) xor(o Digest) Digest {
	var out Digest
	for i := range d {
		out[i] = d[i] ^ o[i]
	}
	return out
}

// Leaf is one hash-token range's accumulated digest.
type Leaf struct {
	// Hash is the XOR of the digests of every row in the range.
	Hash Digest `json:"hash"`
	// Count is the number of rows in the range. XOR alone cannot tell
	// "both rows missing" from "both rows present"; the count breaks
	// the tie for pairs of divergences that cancel byte-wise.
	Count uint64 `json:"count"`
}

// Tree is a sealed Merkle tree: the wire form carries only the leaf
// layer (internal levels are recomputed after decoding with Seal).
type Tree struct {
	Leaves []Leaf `json:"leaves"`
	// levels[0] is the leaf-layer hash row; levels[len-1] is [root].
	levels [][]Digest
}

// Token maps a row key into the 64-bit hash space leaves partition.
func Token(rowKey string) uint64 {
	h := sha256.Sum256([]byte(rowKey))
	return binary.BigEndian.Uint64(h[:8])
}

// LeafIndex returns the leaf (of leafCount) whose token range covers
// the row key.
func LeafIndex(leafCount int, rowKey string) int {
	// token / (2^64 / leafCount): top-of-hash-space range partition.
	return int(Token(rowKey) / (^uint64(0)/uint64(leafCount) + 1))
}

// HashRow digests one row: the key plus each part (cell coordinates,
// timestamps, values) in the order given, length-prefixed so
// concatenations cannot collide.
func HashRow(rowKey string, parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(rowKey)))
	h.Write(lenBuf[:])
	h.Write([]byte(rowKey))
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// Builder accumulates row digests into a tree.
type Builder struct {
	leaves []Leaf
}

// NormalizeLeaves returns the leaf count NewBuilder(n) actually uses:
// n rounded up to a power of two, minimum 2. Callers that bucket rows
// with LeafIndex outside a builder must normalize first, or their
// indexes will disagree with the built tree's.
func NormalizeLeaves(n int) int {
	m := 2
	for m < n {
		m *= 2
	}
	return m
}

// NewBuilder returns a builder with leafCount token ranges (rounded up
// to a power of two, minimum 2, so the binary tree above is complete).
func NewBuilder(leafCount int) *Builder {
	return &Builder{leaves: make([]Leaf, NormalizeLeaves(leafCount))}
}

// Add folds one row digest into its token range's leaf.
func (b *Builder) Add(rowKey string, d Digest) {
	i := LeafIndex(len(b.leaves), rowKey)
	b.leaves[i].Hash = b.leaves[i].Hash.xor(d)
	b.leaves[i].Count++
}

// Build seals the accumulated leaves into a tree.
func (b *Builder) Build() *Tree {
	t := &Tree{Leaves: b.leaves}
	t.Seal()
	return t
}

// Seal (re)computes the internal node levels from the leaf layer —
// called by Build and again after decoding a tree off the wire.
func (t *Tree) Seal() {
	level := make([]Digest, len(t.Leaves))
	var buf [48]byte
	for i, l := range t.Leaves {
		copy(buf[:32], l.Hash[:])
		binary.BigEndian.PutUint64(buf[32:40], l.Count)
		binary.BigEndian.PutUint64(buf[40:48], uint64(i))
		level[i] = sha256.Sum256(buf[:])
	}
	t.levels = [][]Digest{level}
	for len(level) > 1 {
		next := make([]Digest, (len(level)+1)/2)
		for i := range next {
			var pair [64]byte
			copy(pair[:32], level[2*i][:])
			if 2*i+1 < len(level) {
				copy(pair[32:], level[2*i+1][:])
			}
			next[i] = sha256.Sum256(pair[:])
		}
		t.levels = append(t.levels, next)
		level = next
	}
}

// Root returns the tree's root digest.
func (t *Tree) Root() Digest {
	if t.levels == nil {
		t.Seal()
	}
	return t.levels[len(t.levels)-1][0]
}

// Count returns the total number of rows summarized.
func (t *Tree) Count() uint64 {
	var n uint64
	for _, l := range t.Leaves {
		n += l.Count
	}
	return n
}

// Diff compares two trees of the same shape and returns the indexes of
// the divergent leaves, in order. Equal trees compare in O(1) at the
// root; localized divergence descends only the differing subtrees.
func Diff(a, b *Tree) ([]int, error) {
	if len(a.Leaves) != len(b.Leaves) {
		return nil, fmt.Errorf("merkle: tree shapes differ (%d vs %d leaves)", len(a.Leaves), len(b.Leaves))
	}
	if a.levels == nil {
		a.Seal()
	}
	if b.levels == nil {
		b.Seal()
	}
	var out []int
	top := len(a.levels) - 1
	var walk func(level, idx int)
	walk = func(level, idx int) {
		if a.levels[level][idx] == b.levels[level][idx] {
			return
		}
		if level == 0 {
			out = append(out, idx)
			return
		}
		left := 2 * idx
		walk(level-1, left)
		if left+1 < len(a.levels[level-1]) {
			walk(level-1, left+1)
		}
	}
	walk(top, 0)
	return out, nil
}

package merkle

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

func digestFor(key, val string) Digest {
	return HashRow(key, []byte(val))
}

func buildFrom(rows map[string]string, leaves int) *Tree {
	b := NewBuilder(leaves)
	for k, v := range rows {
		b.Add(k, digestFor(k, v))
	}
	return b.Build()
}

func TestIdenticalTreesConverge(t *testing.T) {
	rows := map[string]string{}
	for i := 0; i < 500; i++ {
		rows[fmt.Sprintf("row%04d", i)] = fmt.Sprintf("val%d", i)
	}
	a := buildFrom(rows, 128)
	b := buildFrom(rows, 128)
	if a.Root() != b.Root() {
		t.Fatal("same rows produced different roots")
	}
	d, err := Diff(a, b)
	if err != nil || len(d) != 0 {
		t.Fatalf("Diff = %v, %v; want empty", d, err)
	}
}

func TestOrderIndependence(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%03d", i)
	}
	fwd := NewBuilder(64)
	for _, k := range keys {
		fwd.Add(k, digestFor(k, "v"))
	}
	rev := NewBuilder(64)
	for i := len(keys) - 1; i >= 0; i-- {
		rev.Add(keys[i], digestFor(keys[i], "v"))
	}
	if fwd.Build().Root() != rev.Build().Root() {
		t.Fatal("insertion order changed the root")
	}
}

func TestDiffLocalizesDivergence(t *testing.T) {
	rows := map[string]string{}
	for i := 0; i < 1000; i++ {
		rows[fmt.Sprintf("row%04d", i)] = "v"
	}
	a := buildFrom(rows, 128)

	// Mutate one row's value, drop another, add a third.
	changed, dropped, added := "row0007", "row0500", "rowNEW"
	rows[changed] = "DIFFERENT"
	delete(rows, dropped)
	rows[added] = "x"
	b := buildFrom(rows, 128)

	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{
		LeafIndex(128, changed): true,
		LeafIndex(128, dropped): true,
		LeafIndex(128, added):   true,
	}
	if len(d) != len(want) {
		t.Fatalf("divergent leaves = %v, want the %d leaves of %q/%q/%q", d, len(want), changed, dropped, added)
	}
	for _, idx := range d {
		if !want[idx] {
			t.Errorf("unexpected divergent leaf %d", idx)
		}
	}
}

func TestCountBreaksXORCancellation(t *testing.T) {
	// Two copies of the same digest XOR to zero; the row count must
	// still distinguish an empty leaf from one that lost two rows.
	// Force both rows into one leaf by using leafCount=2 and checking
	// they collide (if not, pick a pair that does).
	d := digestFor("a", "v")
	b1 := NewBuilder(2)
	b1.Add("a", d)
	b1.Add("a", d) // same digest twice: XOR cancels
	t1 := b1.Build()
	b2 := NewBuilder(2)
	t2 := b2.Build()
	if t1.Root() == t2.Root() {
		t.Fatal("count failed to break XOR cancellation")
	}
}

func TestWireRoundTrip(t *testing.T) {
	rows := map[string]string{}
	for i := 0; i < 300; i++ {
		rows[fmt.Sprintf("r%03d", i)] = fmt.Sprintf("%d", rand.Int63())
	}
	a := buildFrom(rows, 64)
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root() != a.Root() {
		t.Fatal("root changed across the wire")
	}
	if d, _ := Diff(a, &back); len(d) != 0 {
		t.Fatalf("wire round trip diverged: %v", d)
	}
}

func TestLeafIndexStable(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		idx := LeafIndex(128, k)
		if idx < 0 || idx >= 128 {
			t.Fatalf("LeafIndex(%q) = %d out of range", k, idx)
		}
		if LeafIndex(128, k) != idx {
			t.Fatal("LeafIndex not deterministic")
		}
	}
}

package plan

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// maxCacheEntries bounds the cache: (query, k) keys are client
// controlled (the HTTP server accepts arbitrary k), so the map must
// not grow without limit.
const maxCacheEntries = 1024

// Cache memoizes gathered PlanStats per (tree, k) so a hot query path
// (e.g. the HTTP server defaulting to AlgoAuto) does not re-read
// histogram statistics on every request. Entries are keyed on each
// input table's mutation sequence — TableStats is free cluster metadata
// — so ANY write (insert, delete, or update; the latter used to be able
// to slip past a count-based check) invalidates the entry and the next
// plan sees fresh statistics. The tree's ID encodes its edge predicates
// (JoinTree.ID), so same-leaf queries of different shapes never share
// an entry.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry // guarded by: mu
}

type cacheEntry struct {
	// seqs holds the mutation sequence of every leaf's table, in leaf
	// order.
	seqs []uint64
	// sources fingerprints which statistics structures existed when
	// the entry was gathered — building a DRJN or BFHM index upgrades
	// the available statistics without touching the input tables, and
	// must invalidate the entry.
	sources string
	stats   core.PlanStats
}

// NewCache returns an empty statistics cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}}
}

func cacheKey(t *core.JoinTree) string {
	return fmt.Sprintf("%s|%d", t.ID(), t.K)
}

// sourceFingerprint describes which statistics structures the store
// currently offers for the tree: "d" when every leaf has a DRJN matrix,
// "b" when every leaf has a BFHM index.
func sourceFingerprint(t *core.JoinTree, store *core.IndexStore) string {
	allDRJN, allBFHM := true, true
	for i := range t.Relations {
		if _, ok := store.DRJN(t.Relations[i].Name); !ok {
			allDRJN = false
		}
		if _, ok := store.BFHM(t.Relations[i].Name); !ok {
			allBFHM = false
		}
	}
	fp := ""
	if allDRJN {
		fp += "d"
	}
	if allBFHM {
		fp += "b"
	}
	return fp
}

func seqsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup returns a cached stats snapshot still matching the live tables'
// mutation sequences and the available statistics structures.
func (c *Cache) lookup(t *core.JoinTree, seqs []uint64, sources string) (core.PlanStats, bool) {
	if c == nil {
		return core.PlanStats{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey(t)]
	if !ok || !seqsEqual(e.seqs, seqs) || e.sources != sources {
		return core.PlanStats{}, false
	}
	return e.stats, true
}

// put stores a stats snapshot.
func (c *Cache) put(t *core.JoinTree, seqs []uint64, sources string, st core.PlanStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= maxCacheEntries {
		// Evict arbitrary entries; a stats walk is cheap enough that
		// an occasional re-gather beats tracking recency.
		for k := range c.entries {
			delete(c.entries, k)
			if len(c.entries) < maxCacheEntries {
				break
			}
		}
	}
	c.entries[cacheKey(t)] = cacheEntry{
		seqs:    append([]uint64(nil), seqs...),
		sources: sources,
		stats:   st,
	}
}

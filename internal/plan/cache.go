package plan

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// maxCacheEntries bounds the cache: (query, k) keys are client
// controlled (the HTTP server accepts arbitrary k), so the map must
// not grow without limit.
const maxCacheEntries = 1024

// Cache memoizes gathered PlanStats per (query, k) so a hot query path
// (e.g. the HTTP server defaulting to AlgoAuto) does not re-read
// histogram statistics on every request. Entries are keyed on each
// input table's mutation sequence — TableStats is free cluster metadata
// — so ANY write (insert, delete, or update; the latter used to be able
// to slip past a count-based check) invalidates the entry and the next
// plan sees fresh statistics.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry // guarded by: mu
}

type cacheEntry struct {
	leftSeq  uint64
	rightSeq uint64
	// sources fingerprints which statistics structures existed when
	// the entry was gathered — building a DRJN or BFHM index upgrades
	// the available statistics without touching the input tables, and
	// must invalidate the entry.
	sources string
	stats   core.PlanStats
}

// NewCache returns an empty statistics cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}}
}

func cacheKey(q core.Query) string {
	return fmt.Sprintf("%s|%d", q.ID(), q.K)
}

// sourceFingerprint describes which statistics structures the store
// currently offers for q.
func sourceFingerprint(q core.Query, store *core.IndexStore) string {
	fp := ""
	if _, ok := store.DRJN(q.Left.Name); ok {
		if _, ok := store.DRJN(q.Right.Name); ok {
			fp += "d"
		}
	}
	if _, ok := store.BFHM(q.Left.Name); ok {
		if _, ok := store.BFHM(q.Right.Name); ok {
			fp += "b"
		}
	}
	return fp
}

// lookup returns a cached stats snapshot still matching the live tables'
// mutation sequences and the available statistics structures.
func (c *Cache) lookup(q core.Query, leftSeq, rightSeq uint64, sources string) (core.PlanStats, bool) {
	if c == nil {
		return core.PlanStats{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey(q)]
	if !ok || e.leftSeq != leftSeq || e.rightSeq != rightSeq || e.sources != sources {
		return core.PlanStats{}, false
	}
	return e.stats, true
}

// put stores a stats snapshot.
func (c *Cache) put(q core.Query, leftSeq, rightSeq uint64, sources string, st core.PlanStats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= maxCacheEntries {
		// Evict arbitrary entries; a stats walk is cheap enough that
		// an occasional re-gather beats tracking recency.
		for k := range c.entries {
			delete(c.entries, k)
			if len(c.entries) < maxCacheEntries {
				break
			}
		}
	}
	c.entries[cacheKey(q)] = cacheEntry{
		leftSeq:  leftSeq,
		rightSeq: rightSeq,
		sources:  sources,
		stats:    st,
	}
}

package plan

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Objective selects the metric candidate plans are ranked by.
type Objective string

// Ranking objectives: the paper's three evaluation metrics.
const (
	// ObjectiveTime minimizes predicted turnaround time (default).
	ObjectiveTime Objective = "time"
	// ObjectiveNetwork minimizes predicted network bytes.
	ObjectiveNetwork Objective = "network"
	// ObjectiveDollars minimizes predicted KV read units (dollar cost).
	ObjectiveDollars Objective = "dollars"
)

// Options tunes one planning pass.
type Options struct {
	// Objective ranks candidates; empty means ObjectiveTime.
	Objective Objective
	// Exec carries the query options that shape per-executor costs.
	Exec core.ExecOptions
	// Cache, when non-nil, memoizes the statistics walks per (query,
	// k) until the input tables change.
	Cache *Cache
	// Stream plans for ranked enumeration with k unknown (DB.Stream,
	// deep pagination): candidates are ranked by the predicted cost of
	// enumerating streamHorizon×k results through their cursor, which
	// charges materializing executors their doubling re-runs. The
	// bounded-k Estimate is still reported per candidate.
	Stream bool
}

// streamHorizon is the enumeration depth — in multiples of the query's
// k — that Stream-mode planning prices. Deep enough that re-run
// penalties separate materializing from incremental cursors, shallow
// enough that a stream abandoned after a few pages was still planned
// sensibly.
const streamHorizon = 5

// Candidate is one costed executor.
type Candidate struct {
	// Executor is the registry name.
	Executor string
	// Estimate is the predicted execution cost (excluding index
	// builds; planning assumes indexes as they exist right now).
	Estimate core.CostEstimate
	// Incremental reports whether the executor's cursor enumerates
	// natively (per-result marginal work) rather than re-running
	// bounded batches at doubled depths.
	Incremental bool
	// Marginal is the predicted cost of the NEXT page of k results
	// after the first: the k→2k cost delta for incremental executors,
	// or the full 2k re-run for materializing ones. Dividing by k gives
	// the per-result marginal cost.
	Marginal core.CostEstimate
	// StreamEstimate is the predicted cost of enumerating
	// streamHorizon×k results through the executor's cursor — the
	// metric Stream-mode planning ranks by.
	StreamEstimate core.CostEstimate
	// IndexReady reports whether the executor could run immediately:
	// it is index-free, or its index is already built.
	IndexReady bool
	// IndexBytes is the stored size of the executor's built index(es).
	IndexBytes uint64
}

// Plan is a ranked set of candidates for one query instance.
type Plan struct {
	// Chosen is the executor AlgoAuto would run: the best-ranked
	// candidate whose index requirements are already met (the planner
	// never builds indexes behind a query's back — it falls back to
	// the cheapest already-built or index-free strategy).
	Chosen string
	// Best is the best-ranked candidate overall, disregarding index
	// availability — when it differs from Chosen, building its index
	// would speed this query up.
	Best string
	// Candidates lists every registered executor, ranked by the
	// objective (ready executors carry no penalty; ranking is purely
	// by predicted cost).
	Candidates []Candidate
	// Objective is the metric the ranking used.
	Objective Objective
	// Stream reports whether the ranking priced deep enumeration
	// (StreamEstimate) instead of the bounded top-k.
	Stream bool
	// Stats is the statistics snapshot the estimates were built from.
	Stats core.PlanStats
	// PlannerCost meters the statistics reads planning consumed.
	PlannerCost sim.Snapshot
}

// metric projects the objective's scalar from an estimate.
func (o Objective) metric(e core.CostEstimate) float64 {
	switch o {
	case ObjectiveNetwork:
		return float64(e.NetworkBytes)
	case ObjectiveDollars:
		return float64(e.KVReads)
	default:
		return float64(e.SimTime)
	}
}

// Explain gathers statistics for the join tree and costs every
// registered executor that supports its shape, returning the ranked
// candidate plans. The statistics reads charge c's metric collector and
// are reported in Plan.PlannerCost.
func Explain(c *kvstore.Cluster, t *core.JoinTree, store *core.IndexStore, opts Options) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	obj := opts.Objective
	switch obj {
	case "":
		obj = ObjectiveTime
	case ObjectiveTime, ObjectiveNetwork, ObjectiveDollars:
	default:
		return nil, fmt.Errorf("plan: unknown objective %q (want %s, %s, or %s)",
			obj, ObjectiveTime, ObjectiveNetwork, ObjectiveDollars)
	}
	before := c.Metrics().Snapshot()
	st, err := gatherStats(c, t, store, opts.Exec.WithDefaults(), opts.Cache)
	if err != nil {
		return nil, err
	}
	plannerCost := c.Metrics().Snapshot().Sub(before)

	execs := core.Executors()
	cands := make([]Candidate, 0, len(execs))
	for _, ex := range execs {
		// Shape-incapable executors (two-way-only strategies on a tree
		// with band edges or >2 leaves) are not candidates at all.
		if !ex.Supports(t) {
			continue
		}
		ready := ex.HasIndex(t, store)
		idxBytes := ex.IndexSize(c, t, store)
		// Estimate sees the candidate's own index context.
		est := *st
		est.IndexReady = ready
		est.IndexBytes = idxBytes
		bounded := ex.Estimate(&est)
		cands = append(cands, Candidate{
			Executor:       ex.Name(),
			Estimate:       bounded,
			Incremental:    ex.Incremental(),
			Marginal:       marginalEstimate(ex, &est, bounded),
			StreamEstimate: streamEstimate(ex, &est, bounded),
			IndexReady:     ready,
			IndexBytes:     idxBytes,
		})
	}
	rankBy := func(cand Candidate) core.CostEstimate {
		if opts.Stream {
			return cand.StreamEstimate
		}
		return cand.Estimate
	}
	sort.SliceStable(cands, func(i, j int) bool {
		mi, mj := obj.metric(rankBy(cands[i])), obj.metric(rankBy(cands[j]))
		if mi != mj {
			return mi < mj
		}
		return cands[i].Executor < cands[j].Executor
	})

	p := &Plan{Candidates: cands, Objective: obj, Stream: opts.Stream, Stats: *st, PlannerCost: plannerCost}
	for _, cand := range cands {
		if p.Best == "" {
			p.Best = cand.Executor
		}
		if p.Chosen == "" && cand.IndexReady {
			p.Chosen = cand.Executor
		}
	}
	if p.Chosen == "" {
		return nil, fmt.Errorf("plan: no runnable executor for %s", t.ID())
	}
	return p, nil
}

// stretchStats re-targets a statistics snapshot to a different k under
// the sqrt-depth model of scaleDepths: covering k2 instead of k scales
// the per-leaf termination depths (and the band walk) by sqrt(k2/k),
// capped at the relation sizes.
func stretchStats(st *core.PlanStats, k2 int) *core.PlanStats {
	out := *st
	if st.K > 0 && k2 != st.K {
		ratio := math.Sqrt(float64(k2) / float64(st.K))
		out.LeftDepth = math.Min(st.LeftDepth*ratio, float64(st.Left.Rows))
		out.RightDepth = math.Min(st.RightDepth*ratio, float64(st.Right.Rows))
		if len(st.LeafDepths) > 0 {
			out.LeafDepths = make([]float64, len(st.LeafDepths))
			for i, d := range st.LeafDepths {
				limit := float64(st.Left.Rows)
				if i < len(st.Leaves) {
					limit = float64(st.Leaves[i].Rows)
				}
				out.LeafDepths[i] = math.Min(d*ratio, limit)
			}
		}
		if st.StatBands > 0 {
			out.StatBands = int(math.Ceil(float64(st.StatBands) * ratio))
		}
	}
	out.K = k2
	return &out
}

// subClamp returns a-b per metric, clamped at zero (estimators are
// monotone in k in principle, but integer rounding can wobble).
func subClamp(a, b core.CostEstimate) core.CostEstimate {
	out := core.CostEstimate{}
	if a.SimTime > b.SimTime {
		out.SimTime = a.SimTime - b.SimTime
	}
	if a.NetworkBytes > b.NetworkBytes {
		out.NetworkBytes = a.NetworkBytes - b.NetworkBytes
	}
	if a.KVReads > b.KVReads {
		out.KVReads = a.KVReads - b.KVReads
	}
	return out
}

func addEst(a, b core.CostEstimate) core.CostEstimate {
	return core.CostEstimate{
		SimTime:      a.SimTime + b.SimTime,
		NetworkBytes: a.NetworkBytes + b.NetworkBytes,
		KVReads:      a.KVReads + b.KVReads,
	}
}

// marginalEstimate predicts the cost of the second page of k results.
// An incremental cursor resumes bounded state, so the next page costs
// the k→2k delta; a materializing cursor re-runs the whole bounded
// query at depth 2k.
func marginalEstimate(ex core.Executor, st *core.PlanStats, bounded core.CostEstimate) core.CostEstimate {
	deeper := ex.Estimate(stretchStats(st, 2*st.K))
	if ex.Incremental() {
		return subClamp(deeper, bounded)
	}
	return deeper
}

// streamEstimate predicts the cost of enumerating streamHorizon×k
// results through the executor's cursor: one deep pass for incremental
// executors, the doubling re-run schedule for materializing ones.
func streamEstimate(ex core.Executor, st *core.PlanStats, bounded core.CostEstimate) core.CostEstimate {
	k := st.K
	if k < 1 {
		k = 1
	}
	target := streamHorizon * k
	if ex.Incremental() {
		return ex.Estimate(stretchStats(st, target))
	}
	// The materializing wrapper runs at k, 2k, 4k, ... until the depth
	// covers the horizon; every run pays in full.
	total := bounded
	for depth := 2 * k; depth/2 < target; depth *= 2 {
		total = addEst(total, ex.Estimate(stretchStats(st, depth)))
	}
	return total
}

// Choose plans the tree and returns the executor AlgoAuto should run
// plus the plan that picked it.
func Choose(c *kvstore.Cluster, t *core.JoinTree, store *core.IndexStore, opts Options) (core.Executor, *Plan, error) {
	p, err := Explain(c, t, store, opts)
	if err != nil {
		return nil, nil, err
	}
	ex, ok := core.Lookup(p.Chosen)
	if !ok {
		return nil, nil, fmt.Errorf("plan: chosen executor %q not registered", p.Chosen)
	}
	return ex, p, nil
}

// ChosenEstimate returns the chosen candidate's estimate.
func (p *Plan) ChosenEstimate() core.CostEstimate {
	for _, cand := range p.Candidates {
		if cand.Executor == p.Chosen {
			return cand.Estimate
		}
	}
	return core.CostEstimate{}
}

// String renders the plan as a compact EXPLAIN table.
func (p *Plan) String() string {
	out := fmt.Sprintf("plan (objective=%s, stats=%s, k=%d): chosen=%s",
		p.Objective, p.Stats.Source, p.Stats.K, p.Chosen)
	if p.Best != p.Chosen {
		out += fmt.Sprintf(" (best=%s needs its index built)", p.Best)
	}
	out += "\n"
	for i, cand := range p.Candidates {
		mark := " "
		if cand.Executor == p.Chosen {
			mark = "*"
		}
		ready := "ready"
		if !cand.IndexReady {
			ready = "no-index"
		}
		out += fmt.Sprintf("%s %d. %-6s %-8s est_time=%-12v est_net=%-10d est_reads=%d\n",
			mark, i+1, cand.Executor, ready,
			cand.Estimate.SimTime.Round(time.Microsecond),
			cand.Estimate.NetworkBytes, cand.Estimate.KVReads)
	}
	return out
}

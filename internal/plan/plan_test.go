package plan

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// setupCluster loads two small relations and returns everything a
// planning pass needs.
func setupCluster(t *testing.T, n int) (*kvstore.Cluster, core.Query, *core.IndexStore) {
	t.Helper()
	c, err := kvstore.NewCluster(sim.LC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) core.Relation {
		rel := core.Relation{
			Name: name, Table: "rel_" + name, Family: "d",
			JoinQual: "join", ScoreQual: "score",
		}
		if _, err := c.CreateTable(rel.Table, []string{rel.Family}, nil); err != nil {
			t.Fatal(err)
		}
		var cells []kvstore.Cell
		for i := 0; i < n; i++ {
			row := fmt.Sprintf("%s%04d", name, i)
			cells = append(cells,
				kvstore.Cell{Row: row, Family: "d", Qualifier: "join", Value: []byte(fmt.Sprintf("j%d", i%20))},
				kvstore.Cell{Row: row, Family: "d", Qualifier: "score", Value: kvstore.FloatValue(float64(i%991) / 991)},
			)
		}
		if err := c.BatchPut(rel.Table, cells); err != nil {
			t.Fatal(err)
		}
		return rel
	}
	q := core.Query{Left: mk("pl"), Right: mk("pr"), Score: core.Sum, K: 10}
	return c, q, core.NewIndexStore()
}

func TestExplainUniformFallback(t *testing.T) {
	c, q, store := setupCluster(t, 400)
	p, err := Explain(c, core.TreeFromQuery(q), store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Source != "uniform" {
		t.Errorf("stats source = %q, want uniform (no statistics built)", p.Stats.Source)
	}
	if p.Stats.Left.Rows != 400 || p.Stats.Right.Rows != 400 {
		t.Errorf("table stats rows = %d/%d, want 400/400", p.Stats.Left.Rows, p.Stats.Right.Rows)
	}
	if p.Stats.JoinPairs <= 0 {
		t.Errorf("uniform fallback produced JoinPairs = %g", p.Stats.JoinPairs)
	}
	if p.Stats.LeftDepth <= 0 || p.Stats.RightDepth <= 0 {
		t.Errorf("uniform fallback produced depths %g/%g", p.Stats.LeftDepth, p.Stats.RightDepth)
	}
	// Only index-free executors are runnable; the chosen one must be
	// among them and every candidate must carry a non-zero estimate.
	switch p.Chosen {
	case "naive", "hive", "pig":
	default:
		t.Errorf("chosen = %q with no indexes built", p.Chosen)
	}
	if len(p.Candidates) != len(core.Executors()) {
		t.Fatalf("%d candidates, want %d", len(p.Candidates), len(core.Executors()))
	}
	for _, cand := range p.Candidates {
		if cand.Estimate.SimTime <= 0 || cand.Estimate.KVReads == 0 {
			t.Errorf("candidate %s: zero estimate %+v", cand.Executor, cand.Estimate)
		}
	}
}

func TestExplainUsesDRJNStatistics(t *testing.T) {
	c, q, store := setupCluster(t, 400)
	ex, _ := core.Lookup("drjn")
	if err := ex.EnsureIndex(c, core.TreeFromQuery(q), store, core.IndexBuildConfig{}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Snapshot()
	p, err := Explain(c, core.TreeFromQuery(q), store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Source != "drjn" {
		t.Errorf("stats source = %q, want drjn", p.Stats.Source)
	}
	if p.Chosen != "drjn" && !candidateReady(p, "drjn") {
		t.Errorf("drjn candidate not marked ready after its build")
	}
	// Planning reads histogram bands through the metered client.
	delta := c.Metrics().Snapshot().Sub(before)
	if delta.RPCCalls == 0 || p.PlannerCost.RPCCalls == 0 {
		t.Errorf("planner statistics reads unmetered: delta=%+v plannerCost=%+v", delta, p.PlannerCost)
	}
	// True join size here: 400*400/20 = 8000 pairs; the DRJN-derived
	// estimate must land within a factor of 4.
	if p.Stats.JoinPairs < 2000 || p.Stats.JoinPairs > 32000 {
		t.Errorf("DRJN JoinPairs estimate %g, want within [2000,32000] (true 8000)", p.Stats.JoinPairs)
	}
}

func TestExplainObjectives(t *testing.T) {
	c, q, store := setupCluster(t, 300)
	for _, obj := range []Objective{ObjectiveTime, ObjectiveNetwork, ObjectiveDollars} {
		p, err := Explain(c, core.TreeFromQuery(q), store, Options{Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		if p.Objective != obj {
			t.Errorf("plan objective = %q, want %q", p.Objective, obj)
		}
		for i := 1; i < len(p.Candidates); i++ {
			if obj.metric(p.Candidates[i].Estimate) < obj.metric(p.Candidates[i-1].Estimate) {
				t.Errorf("%s: candidates out of order at %d", obj, i)
			}
		}
	}
}

func TestExplainRejectsUnknownObjective(t *testing.T) {
	c, q, store := setupCluster(t, 100)
	if _, err := Explain(c, core.TreeFromQuery(q), store, Options{Objective: "dollar"}); err == nil {
		t.Fatal("Explain accepted unknown objective \"dollar\"")
	}
}

func TestChooseRunnable(t *testing.T) {
	c, q, store := setupCluster(t, 200)
	ex, p, err := Choose(c, core.TreeFromQuery(q), store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name() != p.Chosen {
		t.Fatalf("Choose returned %q but plan chose %q", ex.Name(), p.Chosen)
	}
	if ex.NeedsIndex() && !ex.HasIndex(core.TreeFromQuery(q), store) {
		t.Fatalf("Choose picked %q whose index is missing", ex.Name())
	}
	res, err := ex.Run(c, core.TreeFromQuery(q), store, core.ExecOptions{}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) == 0 {
		t.Fatal("chosen executor returned no results")
	}
}

func candidateReady(p *Plan, name string) bool {
	for _, cand := range p.Candidates {
		if cand.Executor == name {
			return cand.IndexReady
		}
	}
	return false
}

// TestStatsUseLiveRows: planner row counts must come from live cells,
// not stored versions — an update-heavy table (every row rewritten
// several times with no compaction) must not inflate cardinalities.
func TestStatsUseLiveRows(t *testing.T) {
	c, q, store := setupCluster(t, 300)
	// Rewrite every left row's score 4 times: 300 live rows now carry
	// ~5x the stored versions.
	for round := 0; round < 4; round++ {
		var cells []kvstore.Cell
		for i := 0; i < 300; i++ {
			row := fmt.Sprintf("pl%04d", i)
			cells = append(cells,
				kvstore.Cell{Row: row, Family: "d", Qualifier: "score", Value: kvstore.FloatValue(float64((i+round)%991) / 991)},
			)
		}
		if err := c.BatchPut(q.Left.Table, cells); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.TableStats(q.Left.Table)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells <= st.LiveCells {
		t.Fatalf("update-heavy table should hold more versions (%d) than live cells (%d)", st.Cells, st.LiveCells)
	}

	p, err := Explain(c, core.TreeFromQuery(q), store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Left.Rows != 300 {
		t.Errorf("planner left rows = %d, want 300 (live), not %d (version-derived)",
			p.Stats.Left.Rows, st.Cells/2)
	}
	if p.Stats.Right.Rows != 300 {
		t.Errorf("planner right rows = %d, want 300", p.Stats.Right.Rows)
	}
}

// TestStreamPlanning: Stream-mode plans must carry per-page marginal
// costs, charge materializing executors their doubling re-runs, and
// rank by the stream estimate.
func TestStreamPlanning(t *testing.T) {
	c, q, store := setupCluster(t, 400)
	for _, name := range []string{"isl", "bfhm", "drjn", "ijlmr"} {
		ex, _ := core.Lookup(name)
		if err := ex.EnsureIndex(c, core.TreeFromQuery(q), store, core.IndexBuildConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := Explain(c, core.TreeFromQuery(q), store, Options{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stream {
		t.Error("plan not marked Stream")
	}
	for i, cand := range p.Candidates {
		ex, _ := core.Lookup(cand.Executor)
		if cand.Incremental != ex.Incremental() {
			t.Errorf("%s: Incremental = %v, want %v", cand.Executor, cand.Incremental, ex.Incremental())
		}
		if cand.StreamEstimate.SimTime < cand.Estimate.SimTime {
			t.Errorf("%s: stream estimate %v below bounded estimate %v",
				cand.Executor, cand.StreamEstimate.SimTime, cand.Estimate.SimTime)
		}
		if !cand.Incremental {
			// Materializing cursors re-run: the horizon must cost at
			// least two full bounded runs.
			if cand.StreamEstimate.SimTime < 2*cand.Estimate.SimTime {
				t.Errorf("%s (materializing): stream estimate %v does not include re-runs (bounded %v)",
					cand.Executor, cand.StreamEstimate.SimTime, cand.Estimate.SimTime)
			}
			if cand.Marginal.SimTime < cand.Estimate.SimTime {
				t.Errorf("%s (materializing): marginal %v below a full re-run %v",
					cand.Executor, cand.Marginal.SimTime, cand.Estimate.SimTime)
			}
		}
		if i > 0 {
			prev := p.Candidates[i-1]
			if ObjectiveTime.metric(cand.StreamEstimate) < ObjectiveTime.metric(prev.StreamEstimate) {
				t.Errorf("stream plan out of order at %d", i)
			}
		}
	}
	// Bounded-mode plans on the same state must rank by the bounded
	// estimate instead.
	pb, err := Explain(c, core.TreeFromQuery(q), store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pb.Candidates); i++ {
		if ObjectiveTime.metric(pb.Candidates[i].Estimate) < ObjectiveTime.metric(pb.Candidates[i-1].Estimate) {
			t.Errorf("bounded plan out of order at %d", i)
		}
	}
}

func TestStatsCacheInvalidatedByWrites(t *testing.T) {
	c, q, store := setupCluster(t, 200)
	tq := core.TreeFromQuery(q)
	cache := NewCache()

	st1, err := gatherStats(c, core.TreeFromQuery(q), store, core.ExecOptions{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged tables: the cache serves the entry.
	st2, err := gatherStats(c, core.TreeFromQuery(q), store, core.ExecOptions{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Left.Rows != st2.Left.Rows {
		t.Fatalf("cache hit changed stats: %v vs %v", st1.Left.Rows, st2.Left.Rows)
	}

	// ANY write to an input — here an update that keeps the live-column
	// count identical (the shape a count-keyed cache missed) — moves the
	// table's mutation sequence and must invalidate the entry.
	if err := c.Put(q.Left.Table, kvstore.Cell{
		Row: "pl0000", Family: "d", Qualifier: "score", Value: kvstore.FloatValue(0.123),
	}); err != nil {
		t.Fatal(err)
	}
	lt, err := c.TableStats(q.Left.Table)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := c.TableStats(q.Right.Table)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.lookup(tq, []uint64{lt.MutSeq, rt.MutSeq}, sourceFingerprint(tq, store)); ok {
		t.Fatal("stats cache served a stale entry after a write")
	}
	if _, err := gatherStats(c, core.TreeFromQuery(q), store, core.ExecOptions{}, cache); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.lookup(tq, []uint64{lt.MutSeq, rt.MutSeq}, sourceFingerprint(tq, store)); !ok {
		t.Fatal("re-gathered stats not cached under the new mutation seq")
	}
}

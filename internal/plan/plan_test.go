package plan

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// setupCluster loads two small relations and returns everything a
// planning pass needs.
func setupCluster(t *testing.T, n int) (*kvstore.Cluster, core.Query, *core.IndexStore) {
	t.Helper()
	c := kvstore.NewCluster(sim.LC(), nil)
	mk := func(name string) core.Relation {
		rel := core.Relation{
			Name: name, Table: "rel_" + name, Family: "d",
			JoinQual: "join", ScoreQual: "score",
		}
		if _, err := c.CreateTable(rel.Table, []string{rel.Family}, nil); err != nil {
			t.Fatal(err)
		}
		var cells []kvstore.Cell
		for i := 0; i < n; i++ {
			row := fmt.Sprintf("%s%04d", name, i)
			cells = append(cells,
				kvstore.Cell{Row: row, Family: "d", Qualifier: "join", Value: []byte(fmt.Sprintf("j%d", i%20))},
				kvstore.Cell{Row: row, Family: "d", Qualifier: "score", Value: kvstore.FloatValue(float64(i%991) / 991)},
			)
		}
		if err := c.BatchPut(rel.Table, cells); err != nil {
			t.Fatal(err)
		}
		return rel
	}
	q := core.Query{Left: mk("pl"), Right: mk("pr"), Score: core.Sum, K: 10}
	return c, q, core.NewIndexStore()
}

func TestExplainUniformFallback(t *testing.T) {
	c, q, store := setupCluster(t, 400)
	p, err := Explain(c, q, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Source != "uniform" {
		t.Errorf("stats source = %q, want uniform (no statistics built)", p.Stats.Source)
	}
	if p.Stats.Left.Rows != 400 || p.Stats.Right.Rows != 400 {
		t.Errorf("table stats rows = %d/%d, want 400/400", p.Stats.Left.Rows, p.Stats.Right.Rows)
	}
	if p.Stats.JoinPairs <= 0 {
		t.Errorf("uniform fallback produced JoinPairs = %g", p.Stats.JoinPairs)
	}
	if p.Stats.LeftDepth <= 0 || p.Stats.RightDepth <= 0 {
		t.Errorf("uniform fallback produced depths %g/%g", p.Stats.LeftDepth, p.Stats.RightDepth)
	}
	// Only index-free executors are runnable; the chosen one must be
	// among them and every candidate must carry a non-zero estimate.
	switch p.Chosen {
	case "naive", "hive", "pig":
	default:
		t.Errorf("chosen = %q with no indexes built", p.Chosen)
	}
	if len(p.Candidates) != len(core.Executors()) {
		t.Fatalf("%d candidates, want %d", len(p.Candidates), len(core.Executors()))
	}
	for _, cand := range p.Candidates {
		if cand.Estimate.SimTime <= 0 || cand.Estimate.KVReads == 0 {
			t.Errorf("candidate %s: zero estimate %+v", cand.Executor, cand.Estimate)
		}
	}
}

func TestExplainUsesDRJNStatistics(t *testing.T) {
	c, q, store := setupCluster(t, 400)
	ex, _ := core.Lookup("drjn")
	if err := ex.EnsureIndex(c, q, store, core.IndexBuildConfig{}); err != nil {
		t.Fatal(err)
	}
	before := c.Metrics().Snapshot()
	p, err := Explain(c, q, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.Source != "drjn" {
		t.Errorf("stats source = %q, want drjn", p.Stats.Source)
	}
	if p.Chosen != "drjn" && !candidateReady(p, "drjn") {
		t.Errorf("drjn candidate not marked ready after its build")
	}
	// Planning reads histogram bands through the metered client.
	delta := c.Metrics().Snapshot().Sub(before)
	if delta.RPCCalls == 0 || p.PlannerCost.RPCCalls == 0 {
		t.Errorf("planner statistics reads unmetered: delta=%+v plannerCost=%+v", delta, p.PlannerCost)
	}
	// True join size here: 400*400/20 = 8000 pairs; the DRJN-derived
	// estimate must land within a factor of 4.
	if p.Stats.JoinPairs < 2000 || p.Stats.JoinPairs > 32000 {
		t.Errorf("DRJN JoinPairs estimate %g, want within [2000,32000] (true 8000)", p.Stats.JoinPairs)
	}
}

func TestExplainObjectives(t *testing.T) {
	c, q, store := setupCluster(t, 300)
	for _, obj := range []Objective{ObjectiveTime, ObjectiveNetwork, ObjectiveDollars} {
		p, err := Explain(c, q, store, Options{Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		if p.Objective != obj {
			t.Errorf("plan objective = %q, want %q", p.Objective, obj)
		}
		for i := 1; i < len(p.Candidates); i++ {
			if obj.metric(p.Candidates[i].Estimate) < obj.metric(p.Candidates[i-1].Estimate) {
				t.Errorf("%s: candidates out of order at %d", obj, i)
			}
		}
	}
}

func TestExplainRejectsUnknownObjective(t *testing.T) {
	c, q, store := setupCluster(t, 100)
	if _, err := Explain(c, q, store, Options{Objective: "dollar"}); err == nil {
		t.Fatal("Explain accepted unknown objective \"dollar\"")
	}
}

func TestChooseRunnable(t *testing.T) {
	c, q, store := setupCluster(t, 200)
	ex, p, err := Choose(c, q, store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name() != p.Chosen {
		t.Fatalf("Choose returned %q but plan chose %q", ex.Name(), p.Chosen)
	}
	if ex.NeedsIndex() && !ex.HasIndex(q, store) {
		t.Fatalf("Choose picked %q whose index is missing", ex.Name())
	}
	res, err := ex.Run(c, q, store, core.ExecOptions{}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) == 0 {
		t.Fatal("chosen executor returned no results")
	}
}

func candidateReady(p *Plan, name string) bool {
	for _, cand := range p.Candidates {
		if cand.Executor == name {
			return cand.IndexReady
		}
	}
	return false
}

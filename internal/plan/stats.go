// Package plan is the cost-based query planner: given a query and the
// indexes already built, it gathers statistics — live cluster table
// stats, DRJN 2-D histograms (the paper's Section 7.1 comparator doubles
// as a cheap statistics structure), and BFHM hybrid-filter join
// estimates (Algorithm 7 reused as a statistics probe) — then asks
// every registered executor for a predicted cost and ranks the
// candidate plans.
package plan

import (
	"math"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/kvstore"
)

// maxStatBands bounds the BFHM statistics walk: the planner point-reads
// at most this many NON-EMPTY leading bucket blobs per relation and
// extrapolates beyond them, keeping planning overhead bounded. Empty
// buckets (skewed scores often leave the top of the range vacant) cost
// one cheap miss each and do not count. The DRJN walk needs no such cap
// — it reads the whole tiny matrix with one scan.
const maxStatBands = 16

// gatherStats assembles the PlanStats for one join tree. Reads it
// issues (DRJN bands, BFHM blobs) charge c's metric collector —
// planning is real work and is metered like any other client access. A
// non-nil cache short-circuits the statistics walks while the input
// tables' mutation sequences are unchanged; any online write moves
// them, so estimates always track live data.
func gatherStats(c *kvstore.Cluster, t *core.JoinTree, store *core.IndexStore, exec core.ExecOptions, cache *Cache) (*core.PlanStats, error) {
	// Relation rows carry two cells each (join value + score). LiveCells
	// counts distinct live columns — not stored versions — so row
	// estimates stay accurate on update-heavy tables, where version
	// churn between compactions used to inflate cardinalities (and could
	// flip AlgoAuto's choice).
	seqs := make([]uint64, len(t.Relations))
	leaves := make([]core.RelStats, len(t.Relations))
	for i := range t.Relations {
		ts, err := c.TableStats(t.Relations[i].Table)
		if err != nil {
			return nil, err
		}
		seqs[i] = ts.MutSeq
		leaves[i] = core.RelStats{Rows: ts.LiveCells / 2, Bytes: ts.Bytes, Regions: ts.Regions}
	}
	sources := sourceFingerprint(t, store)
	if hit, ok := cache.lookup(t, seqs, sources); ok {
		hit.Exec = exec
		return &hit, nil
	}
	st := &core.PlanStats{
		Profile: c.Profile(),
		K:       t.K,
		Exec:    exec,
	}
	st.Leaves = leaves
	st.Left, st.Right = leaves[0], leaves[1]

	if q, ok := t.Binary(); ok {
		// Two-way queries keep the full statistics ladder: DRJN 2-D
		// histograms, then BFHM filter walks, then uniform assumptions.
		if idxA, ok := store.DRJN(q.Left.Name); ok {
			if idxB, ok := store.DRJN(q.Right.Name); ok && idxA.JoinParts == idxB.JoinParts {
				if drjnWalk(c, st, idxA, idxB) {
					st.Source = "drjn"
					st.DRJNJoinParts = idxA.JoinParts
				}
			}
		}
		if st.Source == "" {
			if idxA, ok := store.BFHM(q.Left.Name); ok {
				if idxB, ok := store.BFHM(q.Right.Name); ok {
					if bfhmWalk(c, st, idxA, idxB) {
						st.Source = "bfhm"
						st.BFHMBuckets = idxA.Layout.Buckets
					}
				}
			}
		}
		if st.Source == "" {
			uniformFallback(st)
			st.Source = "uniform"
		}
		if st.BFHMBuckets == 0 {
			if idx, ok := store.BFHM(q.Left.Name); ok {
				st.BFHMBuckets = idx.Layout.Buckets
			}
		}
		st.LeafDepths = []float64{st.LeftDepth, st.RightDepth}
	} else {
		// Trees beyond two leaves: the pairwise histogram walks don't
		// compose across a tree yet, so derive per-leaf depths from the
		// uniform model.
		uniformTree(st)
		st.Source = "uniform"
		if idx, ok := store.BFHM(t.Relations[0].Name); ok {
			st.BFHMBuckets = idx.Layout.Buckets
		}
	}
	cache.put(t, seqs, sources, *st)
	return st, nil
}

// uniformTree is the no-statistics model for trees over n > 2 leaves:
// join cardinality from the foreign-key shape (distinct join values ~
// the smallest leaf), per-leaf termination depths from the symmetric
// depth model — consuming fraction f of every leaf yields ~J·fⁿ
// results, so covering k needs f = (k/J)^(1/n).
func uniformTree(st *core.PlanStats) {
	n := len(st.Leaves)
	dMin := math.Inf(1)
	prod := 1.0
	for _, l := range st.Leaves {
		rows := float64(l.Rows)
		if rows == 0 {
			st.JoinPairs = 0
			st.LeafDepths = make([]float64, n)
			st.LeftDepth, st.RightDepth = 0, 0
			if st.StatBands == 0 {
				st.StatBands = 1
			}
			return
		}
		prod *= rows
		if rows < dMin {
			dMin = rows
		}
	}
	// Every leaf's join column draws from ~dMin distinct values, so the
	// expected join size is Π|Rᵢ| / dMin^(n-1), at least 1.
	j := prod / math.Pow(dMin, float64(n-1))
	if j < 1 {
		j = 1
	}
	st.JoinPairs = j
	f := math.Pow(float64(st.K)/j, 1/float64(n))
	if f > 1 {
		f = 1
	}
	st.LeafDepths = make([]float64, n)
	maxFrac := 0.0
	for i, l := range st.Leaves {
		d := f * float64(l.Rows)
		if d < 1 {
			d = 1
		}
		st.LeafDepths[i] = d
		if frac := d / float64(l.Rows); frac > maxFrac {
			maxFrac = frac
		}
	}
	st.LeftDepth, st.RightDepth = st.LeafDepths[0], st.LeafDepths[1]
	if st.StatBands == 0 {
		st.StatBands = int(math.Ceil(maxFrac*100)) + 1
	}
}

// bandTotal sums one decoded band's partition counts.
func bandTotal(b *histogram.BandData) uint64 {
	if b == nil {
		return 0
	}
	var t uint64
	for _, c := range b.Cells {
		t += c
	}
	return t
}

// drjnWalk reads both DRJN matrices (one batched scan each — the whole
// index is Layout.Buckets tiny rows) and replays the alternating band
// walk QueryDRJN uses, in memory, until the pairwise dot products cover
// k. It fills JoinPairs, the per-side depths, and StatBands; false
// means the walk produced nothing usable.
func drjnWalk(c *kvstore.Cluster, st *core.PlanStats, idxA, idxB *core.DRJNIndex) bool {
	allA, err := core.FetchAllBands(c, idxA)
	if err != nil {
		return false
	}
	allB, err := core.FetchAllBands(c, idxB)
	if err != nil {
		return false
	}

	type side struct {
		all    []*histogram.BandData
		next   int
		bands  []*histogram.BandData
		tuples uint64
	}
	a, b := &side{all: allA}, &side{all: allB}
	var estPairs float64

	consume := func(s, other *side) {
		bd := s.all[s.next]
		s.next++
		s.bands = append(s.bands, bd)
		s.tuples += bandTotal(bd)
		if bd != nil {
			for _, ob := range other.bands {
				if ob == nil {
					continue
				}
				if n, err := histogram.DotProduct(bd, ob); err == nil {
					estPairs += float64(n)
				}
			}
		}
	}

	for estPairs < float64(st.K) {
		aOpen := a.next < len(a.all)
		bOpen := b.next < len(b.all)
		if !aOpen && !bOpen {
			break
		}
		if aOpen && (a.next <= b.next || !bOpen) {
			consume(a, b)
		} else {
			consume(b, a)
		}
	}
	if a.next == 0 && b.next == 0 {
		return false
	}

	st.LeftDepth = float64(a.tuples)
	st.RightDepth = float64(b.tuples)
	st.StatBands = max(a.next, b.next)

	// Both full matrices are in memory, so the total join cardinality
	// needs no prefix extrapolation: Σ_i Σ_j dot(A_i, B_j) collapses
	// to the dot product of the per-partition column sums. That dot
	// product D counts a full cross product within each partition, so
	// it carries a hash-collision surplus on top of the true join size
	// J: under uniform hashing E[D] = J + |R|·|S|/parts regardless of
	// the distinct-value count. Subtract the surplus, clamped by the
	// walked prefix's evidence.
	d := totalDotProduct(allA, allB)
	nl, nr := float64(st.Left.Rows), float64(st.Right.Rows)
	j := d - nl*nr/float64(idxA.JoinParts)
	j = math.Max(j, estPairs)
	st.JoinPairs = math.Min(math.Max(j, 1), nl*nr)
	if estPairs < float64(st.K) && st.JoinPairs > 0 {
		scaleDepths(st)
	}
	return true
}

// totalDotProduct estimates the full join size between two complete
// DRJN matrices via per-partition column sums.
func totalDotProduct(allA, allB []*histogram.BandData) float64 {
	var colA, colB []uint64
	sum := func(cols []uint64, bands []*histogram.BandData) []uint64 {
		for _, bd := range bands {
			if bd == nil {
				continue
			}
			if cols == nil {
				cols = make([]uint64, len(bd.Cells))
			}
			if len(bd.Cells) != len(cols) {
				continue
			}
			for p, n := range bd.Cells {
				cols[p] += n
			}
		}
		return cols
	}
	colA, colB = sum(colA, allA), sum(colB, allB)
	if colA == nil || colB == nil || len(colA) != len(colB) {
		return 0
	}
	var total float64
	for p := range colA {
		total += float64(colA[p]) * float64(colB[p])
	}
	return total
}

// bfhmWalk fetches leading BFHM bucket filters of both relations and
// accumulates bloom join-cardinality estimates until they cover k.
func bfhmWalk(c *kvstore.Cluster, st *core.PlanStats, idxA, idxB *core.BFHMIndex) bool {
	var fa, fb []*bloom.Hybrid
	var tuplesA, tuplesB uint64
	var estPairs float64
	buckets := idxA.Layout.Buckets
	if idxB.Layout.Buckets < buckets {
		buckets = idxB.Layout.Buckets
	}
	steps, nonEmpty := 0, 0
	for bu := 0; bu < buckets && nonEmpty < maxStatBands && estPairs < float64(st.K); bu++ {
		ha, err := core.FetchBucketFilter(c, idxA, bu)
		if err != nil {
			return false
		}
		hb, err := core.FetchBucketFilter(c, idxB, bu)
		if err != nil {
			return false
		}
		steps = bu + 1
		if ha != nil || hb != nil {
			nonEmpty++
		}
		if ha != nil {
			tuplesA += ha.N()
		}
		if hb != nil {
			tuplesB += hb.N()
		}
		fa, fb = append(fa, ha), append(fb, hb)
		// The new bucket pair estimates against every fetched
		// counterpart bucket (the Algorithm 6 pairing order).
		for i := 0; i < len(fb); i++ {
			if ha == nil || fb[i] == nil {
				continue
			}
			if je, err := bloom.EstimateJoinFolded(ha, fb[i]); err == nil && je != nil {
				estPairs += je.Cardinality
			}
		}
		for i := 0; i < len(fa)-1; i++ {
			if hb == nil || fa[i] == nil {
				continue
			}
			if je, err := bloom.EstimateJoinFolded(fa[i], hb); err == nil && je != nil {
				estPairs += je.Cardinality
			}
		}
	}
	if steps == 0 {
		return false
	}
	st.LeftDepth = float64(tuplesA)
	st.RightDepth = float64(tuplesB)
	st.StatBands = steps
	extrapolate(st, estPairs, float64(tuplesA), float64(tuplesB))
	return true
}

// extrapolate derives the full-join cardinality from a walked prefix
// (pair density per left×right tuple pair, scaled to the whole input)
// and widens the depths when the walk stopped short of covering k.
func extrapolate(st *core.PlanStats, estPairs, walkedL, walkedR float64) {
	if estPairs <= 0 {
		// The walk saw no joinable mass before hitting its band cap
		// (skewed score distributions leave the top bands empty): fall
		// back to the uniform cardinality model, keeping the walked
		// depths as lower bounds.
		st.JoinPairs = uniformJoinPairs(st)
		scaleDepths(st)
		return
	}
	if walkedL > 0 && walkedR > 0 {
		density := estPairs / (walkedL * walkedR)
		st.JoinPairs = density * float64(st.Left.Rows) * float64(st.Right.Rows)
	}
	if st.JoinPairs < estPairs {
		st.JoinPairs = estPairs
	}
	if estPairs < float64(st.K) && st.JoinPairs > 0 {
		scaleDepths(st)
	}
}

// uniformJoinPairs is the no-statistics cardinality model: distinct
// join values ~ the smaller side (the foreign-key shape of the paper's
// Q1/Q2, where the dimension table's keys drive the join), so
// |R ⋈ S| ≈ max(|R|, |S|).
func uniformJoinPairs(st *core.PlanStats) float64 {
	nl, nr := float64(st.Left.Rows), float64(st.Right.Rows)
	if nl == 0 || nr == 0 {
		return 0
	}
	return nl * nr / math.Min(nl, nr)
}

// uniformFallback derives JoinPairs and depths from table cardinalities
// alone: the uniformJoinPairs model plus uniform scores and independent
// score/join-value distributions.
func uniformFallback(st *core.PlanStats) {
	nl, nr := float64(st.Left.Rows), float64(st.Right.Rows)
	if nl == 0 || nr == 0 {
		st.JoinPairs = 0
		st.LeftDepth, st.RightDepth = 0, 0
		return
	}
	st.JoinPairs = uniformJoinPairs(st)
	scaleDepths(st)
	// Without histogram evidence, size histogram-driven executors'
	// fetches for the default 100-band geometry.
	if st.StatBands == 0 {
		frac := st.LeftDepth / nl
		if r := st.RightDepth / nr; r > frac {
			frac = r
		}
		st.StatBands = int(math.Ceil(frac*100)) + 1
	}
}

// scaleDepths sets the per-side termination depths from JoinPairs under
// the uniform/independence assumption: consuming fraction f of both
// sides yields ~JoinPairs*f² results, so covering k needs
// f = sqrt(k/JoinPairs).
func scaleDepths(st *core.PlanStats) {
	if st.JoinPairs <= 0 {
		st.LeftDepth = float64(st.Left.Rows)
		st.RightDepth = float64(st.Right.Rows)
		return
	}
	f := math.Sqrt(float64(st.K) / st.JoinPairs)
	if f > 1 {
		f = 1
	}
	dl := f * float64(st.Left.Rows)
	dr := f * float64(st.Right.Rows)
	// Depths never shrink below what a walk already established.
	if dl > st.LeftDepth {
		st.LeftDepth = dl
	}
	if dr > st.RightDepth {
		st.RightDepth = dr
	}
	if st.LeftDepth < 1 {
		st.LeftDepth = 1
	}
	if st.RightDepth < 1 {
		st.RightDepth = 1
	}
}

package sim

import (
	"testing"
	"time"
)

func TestLaneForwardsCountersNotTime(t *testing.T) {
	root := &Metrics{}
	lane := NewLane(root)

	lane.AddNetwork(100)
	lane.AddKVReads(7)
	lane.AddKVWrites(3)
	lane.AddRPC()
	lane.AddDiskRead(50)
	lane.AddTuplesShipped(2)
	lane.Advance(5 * time.Second)

	// Counters forward to the root as they accrue...
	if root.NetworkBytes() != 100 || root.KVReads() != 7 || root.KVWrites() != 3 ||
		root.RPCCalls() != 1 || root.DiskBytesRead() != 50 || root.TuplesShipped() != 2 {
		t.Errorf("root counters not forwarded: %+v", root.Snapshot())
	}
	// ...but clock advances stay on the lane.
	if root.SimTime() != 0 {
		t.Errorf("root clock advanced to %v by a lane", root.SimTime())
	}
	if lane.SimTime() != 5*time.Second {
		t.Errorf("lane clock = %v, want 5s", lane.SimTime())
	}
}

func TestLaneNesting(t *testing.T) {
	root := &Metrics{}
	mid := NewLane(root)
	leaf := NewLane(mid)
	leaf.AddKVReads(4)
	if mid.KVReads() != 4 || root.KVReads() != 4 {
		t.Errorf("nested forwarding broken: mid=%d root=%d", mid.KVReads(), root.KVReads())
	}
	leaf.Advance(time.Second)
	if mid.SimTime() != 0 || root.SimTime() != 0 {
		t.Error("nested lane advanced an ancestor clock")
	}
}

func TestAdvanceParallel(t *testing.T) {
	m := &Metrics{}
	m.AdvanceParallel(3*time.Second, 7*time.Second, 5*time.Second)
	if m.SimTime() != 7*time.Second {
		t.Errorf("clock = %v, want the 7s makespan", m.SimTime())
	}
	m.AdvanceParallel() // no lanes: no-op
	if m.SimTime() != 7*time.Second {
		t.Errorf("empty AdvanceParallel moved the clock to %v", m.SimTime())
	}
	m.AdvanceParallel(-time.Second, 2*time.Second)
	if m.SimTime() != 9*time.Second {
		t.Errorf("clock = %v, want 9s", m.SimTime())
	}
}

func TestLaneFanOutConvention(t *testing.T) {
	root := &Metrics{}
	lanes := make([]*Metrics, 4)
	durs := make([]time.Duration, 4)
	for i := range lanes {
		lanes[i] = NewLane(root)
		lanes[i].AddKVReads(10)
		d := time.Duration(i+1) * time.Second
		lanes[i].Advance(d)
		durs[i] = lanes[i].SimTime()
	}
	root.AdvanceParallel(durs...)
	if root.KVReads() != 40 {
		t.Errorf("root reads = %d, want the 40 summed over lanes", root.KVReads())
	}
	if root.SimTime() != 4*time.Second {
		t.Errorf("root clock = %v, want the 4s slowest lane", root.SimTime())
	}
}

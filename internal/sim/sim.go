// Package sim provides the deterministic cost model used to reproduce the
// paper's three evaluation metrics (Section 7.1):
//
//   - Turnaround time: wall-clock time to compute the top-k result. We
//     model it as simulated time accumulated on a virtual clock — disk
//     scans, network transfers, RPC round trips, and MapReduce job/task
//     startup all advance the clock according to a hardware profile.
//   - Network bandwidth: bytes moved between nodes (client RPCs, shuffle
//     traffic, remote reads). Node-local reads are free.
//   - Dollar cost: the number of key-value pairs read from the store,
//     priced per DynamoDB's Read Capacity model (the paper's footnote 1:
//     every KV pair below 1 KB is one read unit, $0.01 per hour per 50
//     units of provisioned throughput).
//
// Two profiles mirror the paper's clusters: EC2 (1+8 m1.large instances)
// and LC (the 5-node lab cluster with 32 cores and 10 disks per node).
// Absolute times are not calibrated to the authors' testbed — only the
// relative behaviour (who wins, by what factor, where crossovers happen)
// is meaningful, which is all the reproduction claims.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Profile describes the hardware cost parameters of a cluster.
type Profile struct {
	Name string
	// Nodes is the number of storage/compute nodes (region servers).
	Nodes int
	// DiskBandwidth is sequential read throughput per node, bytes/sec.
	DiskBandwidth float64
	// NetBandwidth is point-to-point network throughput, bytes/sec.
	NetBandwidth float64
	// RPCLatency is the fixed round-trip cost of one store RPC.
	RPCLatency time.Duration
	// SeekLatency is the fixed cost of one random (keyed) disk read.
	SeekLatency time.Duration
	// MRJobStartup is the fixed scheduling cost of one MapReduce job.
	MRJobStartup time.Duration
	// MRTaskStartup is the fixed cost of launching one map/reduce task.
	MRTaskStartup time.Duration
	// CPUPerKV is the per-key-value processing cost (compare, hash,
	// serialize) charged wherever tuples are touched.
	CPUPerKV time.Duration
}

// EC2 mirrors the paper's Amazon EC2 m1.large deployment: 2 virtual
// cores, moderate instance storage, shared gigabit network, high RPC
// latencies and heavyweight Hadoop job startup.
func EC2() Profile {
	return Profile{
		Name:          "EC2",
		Nodes:         8,
		DiskBandwidth: 80e6, // ~80 MB/s instance storage
		NetBandwidth:  60e6, // shared gigabit, effective ~60 MB/s
		RPCLatency:    900 * time.Microsecond,
		SeekLatency:   2 * time.Millisecond,
		MRJobStartup:  2500 * time.Millisecond, // Hadoop 1.x job scheduling
		MRTaskStartup: 400 * time.Millisecond,
		CPUPerKV:      600 * time.Nanosecond,
	}
}

// LC mirrors the paper's in-house lab cluster: 5 nodes, 32 cores and
// 10x1TB disks each, 10 GbE, low-latency LAN.
func LC() Profile {
	return Profile{
		Name:          "LC",
		Nodes:         5,
		DiskBandwidth: 900e6, // 10 striped disks
		NetBandwidth:  1.1e9, // 10 GbE
		RPCLatency:    150 * time.Microsecond,
		SeekLatency:   500 * time.Microsecond,
		MRJobStartup:  1200 * time.Millisecond,
		MRTaskStartup: 150 * time.Millisecond,
		CPUPerKV:      120 * time.Nanosecond,
	}
}

// ScanTime returns the time one node needs to sequentially read n bytes.
func (p Profile) ScanTime(bytes uint64) time.Duration {
	return time.Duration(float64(bytes) / p.DiskBandwidth * float64(time.Second))
}

// TransferTime returns the network time to move n bytes point-to-point.
func (p Profile) TransferTime(bytes uint64) time.Duration {
	return time.Duration(float64(bytes) / p.NetBandwidth * float64(time.Second))
}

// RPCTime returns the full cost of a round trip carrying n payload bytes.
func (p Profile) RPCTime(bytes uint64) time.Duration {
	return p.RPCLatency + p.TransferTime(bytes)
}

// CPUTime returns the processing cost of touching n key-value pairs.
func (p Profile) CPUTime(kvs uint64) time.Duration {
	return time.Duration(kvs) * p.CPUPerKV
}

// ReadUnitDollarsPerHour is DynamoDB's price for 50 units of provisioned
// read capacity (the paper's footnote 1).
const ReadUnitDollarsPerHour = 0.01

// DollarsForReads prices a read-unit count per the paper's DynamoDB
// model: the workload needs ceil(reads/50) capacity-hours at $0.01.
// Every dollar-cost reporter (live metrics, snapshots, planner
// estimates) prices through this single function.
func DollarsForReads(reads uint64) float64 {
	units := (reads + 49) / 50
	return float64(units) * ReadUnitDollarsPerHour
}

// Metrics accumulates the three paper metrics plus supporting detail. It
// is safe for concurrent use; MapReduce tasks update it from goroutines.
//
// A Metrics may be a *lane* of a parent collector (see NewLane): resource
// counters — bytes, read units, RPC counts — forward to the parent as they
// accrue, because parallel work still consumes the sum of its lanes'
// resources, while clock advances stay local, because parallel work takes
// only as long as its slowest lane. The coordinator of a fan-out folds
// lane times back into the parent clock with AdvanceParallel.
type Metrics struct {
	mu sync.Mutex

	// parent, when non-nil, receives a forwarded copy of every counter
	// update (but never clock advances).
	parent *Metrics

	simTime       time.Duration // guarded by: mu
	networkBytes  uint64        // guarded by: mu
	kvReads       uint64        // guarded by: mu
	kvWrites      uint64        // guarded by: mu
	rpcCalls      uint64        // guarded by: mu
	diskBytesRead uint64        // guarded by: mu
	tuplesShipped uint64        // guarded by: mu
}

// NewLane returns a child collector for one lane of a concurrent fan-out.
// Counter updates forward to parent immediately; Advance accumulates on
// the lane only. After the fan-out joins, fold the lanes' clocks into the
// parent with parent.AdvanceParallel(laneDurations...). Lanes nest: a
// lane's counters forward transitively to the root collector.
func NewLane(parent *Metrics) *Metrics {
	return &Metrics{parent: parent}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.simTime = 0
	m.networkBytes = 0
	m.kvReads = 0
	m.kvWrites = 0
	m.rpcCalls = 0
	m.diskBytesRead = 0
	m.tuplesShipped = 0
}

// Advance moves the virtual clock forward by d (sequential work). On a
// lane, the advance stays local — it reaches the parent only through
// AdvanceParallel at the fan-out join point.
func (m *Metrics) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	m.simTime += d
	m.mu.Unlock()
}

// AdvanceParallel folds a joined fan-out into the clock: the parallel
// phase took as long as its slowest lane, so the clock advances by the
// maximum of the lane durations (the convention the MapReduce runner's
// task waves already use via ParallelTimer.Makespan).
func (m *Metrics) AdvanceParallel(lanes ...time.Duration) {
	var max time.Duration
	for _, d := range lanes {
		if d > max {
			max = d
		}
	}
	m.Advance(max)
}

// AddNetwork records n bytes moved across the network.
func (m *Metrics) AddNetwork(n uint64) {
	m.mu.Lock()
	m.networkBytes += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddNetwork(n)
	}
}

// AddKVReads records n key-value pairs read from the store (each is one
// DynamoDB read unit in the paper's cost model).
func (m *Metrics) AddKVReads(n uint64) {
	m.mu.Lock()
	m.kvReads += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddKVReads(n)
	}
}

// AddKVWrites records n key-value pairs written.
func (m *Metrics) AddKVWrites(n uint64) {
	m.mu.Lock()
	m.kvWrites += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddKVWrites(n)
	}
}

// AddRPC records one RPC round trip.
func (m *Metrics) AddRPC() {
	m.mu.Lock()
	m.rpcCalls++
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddRPC()
	}
}

// AddReadRPC records the counters of one read round trip — RPC count,
// network bytes, read units, disk bytes — in a single lock acquisition.
// The point-get hot path charges here; the four separate Add calls cost
// four mutex round trips per get.
func (m *Metrics) AddReadRPC(network, kvReads, disk uint64) {
	m.mu.Lock()
	m.rpcCalls++
	m.networkBytes += network
	m.kvReads += kvReads
	m.diskBytesRead += disk
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddReadRPC(network, kvReads, disk)
	}
}

// AddDiskRead records n bytes read from disk.
func (m *Metrics) AddDiskRead(n uint64) {
	m.mu.Lock()
	m.diskBytesRead += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddDiskRead(n)
	}
}

// AddTuplesShipped records n data tuples sent to the query coordinator.
func (m *Metrics) AddTuplesShipped(n uint64) {
	m.mu.Lock()
	m.tuplesShipped += n
	m.mu.Unlock()
	if m.parent != nil {
		m.parent.AddTuplesShipped(n)
	}
}

// SimTime returns the accumulated virtual clock.
func (m *Metrics) SimTime() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.simTime
}

// NetworkBytes returns bytes moved across the network.
func (m *Metrics) NetworkBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.networkBytes
}

// KVReads returns key-value pairs read (read units).
func (m *Metrics) KVReads() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kvReads
}

// KVWrites returns key-value pairs written.
func (m *Metrics) KVWrites() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.kvWrites
}

// RPCCalls returns the RPC round-trip count.
func (m *Metrics) RPCCalls() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rpcCalls
}

// DiskBytesRead returns bytes read from disk.
func (m *Metrics) DiskBytesRead() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.diskBytesRead
}

// TuplesShipped returns data tuples sent to the coordinator.
func (m *Metrics) TuplesShipped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tuplesShipped
}

// Dollars prices the accumulated read units (see DollarsForReads).
func (m *Metrics) Dollars() float64 {
	return DollarsForReads(m.KVReads())
}

// Snapshot is a copyable view of a Metrics at a point in time.
type Snapshot struct {
	SimTime       time.Duration
	NetworkBytes  uint64
	KVReads       uint64
	KVWrites      uint64
	RPCCalls      uint64
	DiskBytesRead uint64
	TuplesShipped uint64
}

// Snapshot captures the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		SimTime:       m.simTime,
		NetworkBytes:  m.networkBytes,
		KVReads:       m.kvReads,
		KVWrites:      m.kvWrites,
		RPCCalls:      m.rpcCalls,
		DiskBytesRead: m.diskBytesRead,
		TuplesShipped: m.tuplesShipped,
	}
}

// Sub returns the delta from an earlier snapshot to this one.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		SimTime:       s.SimTime - earlier.SimTime,
		NetworkBytes:  s.NetworkBytes - earlier.NetworkBytes,
		KVReads:       s.KVReads - earlier.KVReads,
		KVWrites:      s.KVWrites - earlier.KVWrites,
		RPCCalls:      s.RPCCalls - earlier.RPCCalls,
		DiskBytesRead: s.DiskBytesRead - earlier.DiskBytesRead,
		TuplesShipped: s.TuplesShipped - earlier.TuplesShipped,
	}
}

// Add returns the field-wise sum of two snapshots (Sub's inverse).
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		SimTime:       s.SimTime + o.SimTime,
		NetworkBytes:  s.NetworkBytes + o.NetworkBytes,
		KVReads:       s.KVReads + o.KVReads,
		KVWrites:      s.KVWrites + o.KVWrites,
		RPCCalls:      s.RPCCalls + o.RPCCalls,
		DiskBytesRead: s.DiskBytesRead + o.DiskBytesRead,
		TuplesShipped: s.TuplesShipped + o.TuplesShipped,
	}
}

// Dollars prices a snapshot's read units.
func (s Snapshot) Dollars() float64 {
	return DollarsForReads(s.KVReads)
}

func (s Snapshot) String() string {
	return fmt.Sprintf("time=%v net=%dB kvReads=%d kvWrites=%d rpc=%d disk=%dB shipped=%d",
		s.SimTime, s.NetworkBytes, s.KVReads, s.KVWrites, s.RPCCalls, s.DiskBytesRead, s.TuplesShipped)
}

// ParallelTimer tracks per-worker busy time for a fan-out phase (e.g. all
// mappers of a job) and reports the makespan: tasks are assigned to the
// worker with the least accumulated time, modelling wave scheduling.
type ParallelTimer struct {
	busy []time.Duration
}

// NewParallelTimer returns a timer for n parallel workers (n >= 1).
func NewParallelTimer(n int) *ParallelTimer {
	if n < 1 {
		n = 1
	}
	return &ParallelTimer{busy: make([]time.Duration, n)}
}

// Assign schedules a task of duration d on the least-loaded worker.
func (t *ParallelTimer) Assign(d time.Duration) {
	min := 0
	for i := 1; i < len(t.busy); i++ {
		if t.busy[i] < t.busy[min] {
			min = i
		}
	}
	t.busy[min] += d
}

// AssignTo schedules a task of duration d on a specific worker (modulo
// the worker count), used when task placement is dictated by data
// locality rather than free choice.
func (t *ParallelTimer) AssignTo(worker int, d time.Duration) {
	if len(t.busy) == 0 {
		return
	}
	w := worker % len(t.busy)
	if w < 0 {
		w += len(t.busy)
	}
	t.busy[w] += d
}

// Makespan returns the maximum accumulated busy time across workers —
// the wall-clock duration of the parallel phase.
func (t *ParallelTimer) Makespan() time.Duration {
	var max time.Duration
	for _, b := range t.busy {
		if b > max {
			max = b
		}
	}
	return max
}

package sim

import (
	"sync"
	"testing"
	"time"
)

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{EC2(), LC()} {
		if p.Nodes < 1 {
			t.Errorf("%s: nodes = %d", p.Name, p.Nodes)
		}
		if p.DiskBandwidth <= 0 || p.NetBandwidth <= 0 {
			t.Errorf("%s: non-positive bandwidth", p.Name)
		}
		if p.RPCLatency <= 0 || p.MRJobStartup <= 0 {
			t.Errorf("%s: non-positive latencies", p.Name)
		}
	}
	// LC must be strictly faster than EC2 in every dimension the paper
	// relies on.
	ec2, lc := EC2(), LC()
	if lc.DiskBandwidth <= ec2.DiskBandwidth {
		t.Error("LC disk must beat EC2")
	}
	if lc.NetBandwidth <= ec2.NetBandwidth {
		t.Error("LC network must beat EC2")
	}
	if lc.RPCLatency >= ec2.RPCLatency {
		t.Error("LC RPC latency must beat EC2")
	}
}

func TestScanTransferRPC(t *testing.T) {
	p := Profile{DiskBandwidth: 1e6, NetBandwidth: 2e6, RPCLatency: time.Millisecond}
	if got := p.ScanTime(1e6); got != time.Second {
		t.Errorf("ScanTime(1MB) = %v, want 1s", got)
	}
	if got := p.TransferTime(2e6); got != time.Second {
		t.Errorf("TransferTime(2MB) = %v, want 1s", got)
	}
	if got := p.RPCTime(0); got != time.Millisecond {
		t.Errorf("RPCTime(0) = %v, want 1ms", got)
	}
	if got := p.RPCTime(2e6); got != time.Second+time.Millisecond {
		t.Errorf("RPCTime(2MB) = %v, want 1.001s", got)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	var m Metrics
	m.Advance(time.Second)
	m.Advance(time.Second)
	m.AddNetwork(100)
	m.AddKVReads(7)
	m.AddKVWrites(3)
	m.AddRPC()
	m.AddDiskRead(50)
	m.AddTuplesShipped(2)
	if m.SimTime() != 2*time.Second {
		t.Errorf("SimTime = %v", m.SimTime())
	}
	if m.NetworkBytes() != 100 || m.KVReads() != 7 || m.KVWrites() != 3 ||
		m.RPCCalls() != 1 || m.DiskBytesRead() != 50 || m.TuplesShipped() != 2 {
		t.Errorf("counter mismatch: %+v", m.Snapshot())
	}
	m.Advance(-time.Hour) // negative advances are ignored
	if m.SimTime() != 2*time.Second {
		t.Error("negative Advance must be a no-op")
	}
	m.Reset()
	if m.Snapshot() != (Snapshot{}) {
		t.Error("Reset did not zero counters")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.AddKVReads(1)
				m.AddNetwork(2)
				m.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if m.KVReads() != 5000 {
		t.Errorf("KVReads = %d, want 5000", m.KVReads())
	}
	if m.NetworkBytes() != 10000 {
		t.Errorf("NetworkBytes = %d, want 10000", m.NetworkBytes())
	}
	if m.SimTime() != 5000*time.Microsecond {
		t.Errorf("SimTime = %v, want 5ms", m.SimTime())
	}
}

func TestDollars(t *testing.T) {
	var m Metrics
	m.AddKVReads(1)
	if d := m.Dollars(); d != 0.01 {
		t.Errorf("1 read = $%g, want $0.01 (1 capacity unit-hour)", d)
	}
	m.AddKVReads(49)
	if d := m.Dollars(); d != 0.01 {
		t.Errorf("50 reads = $%g, want $0.01", d)
	}
	m.AddKVReads(1)
	if d := m.Dollars(); d != 0.02 {
		t.Errorf("51 reads = $%g, want $0.02", d)
	}
}

func TestSnapshotSub(t *testing.T) {
	var m Metrics
	m.AddKVReads(10)
	before := m.Snapshot()
	m.AddKVReads(5)
	m.Advance(time.Second)
	delta := m.Snapshot().Sub(before)
	if delta.KVReads != 5 {
		t.Errorf("delta reads = %d, want 5", delta.KVReads)
	}
	if delta.SimTime != time.Second {
		t.Errorf("delta time = %v, want 1s", delta.SimTime)
	}
	if delta.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestParallelTimerLeastLoaded(t *testing.T) {
	pt := NewParallelTimer(2)
	pt.Assign(3 * time.Second)
	pt.Assign(1 * time.Second)
	pt.Assign(1 * time.Second)
	// Worker 0: 3s; worker 1: 1+1 = 2s.
	if got := pt.Makespan(); got != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", got)
	}
	pt.Assign(2 * time.Second) // goes to worker 1 (2s) -> 4s
	if got := pt.Makespan(); got != 4*time.Second {
		t.Errorf("makespan = %v, want 4s", got)
	}
}

func TestParallelTimerLocality(t *testing.T) {
	pt := NewParallelTimer(3)
	pt.AssignTo(0, time.Second)
	pt.AssignTo(3, time.Second) // wraps to worker 0
	pt.AssignTo(1, time.Second)
	if got := pt.Makespan(); got != 2*time.Second {
		t.Errorf("makespan = %v, want 2s (two tasks pinned to worker 0)", got)
	}
}

func TestParallelTimerDegenerate(t *testing.T) {
	pt := NewParallelTimer(0) // clamps to 1
	pt.Assign(time.Second)
	pt.Assign(time.Second)
	if got := pt.Makespan(); got != 2*time.Second {
		t.Errorf("single-worker makespan = %v, want 2s", got)
	}
}

package topology

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/merkle"
	"repro/internal/transport"
)

// Anti-entropy: every table is summarized per replica as a Merkle tree
// over row digests; trees are diffed root-down against the group's
// source replica (the first clean one — it holds every acked write),
// and only the divergent hash-token leaves move: the source ships their
// raw cells, the target overwrites at original timestamps and deletes
// rows the source lacks. A target that cannot even summarize its table
// (corruption: checksums failed, regions quarantined) gets a full
// resync — drop, recreate, re-ingest — since there is no trustworthy
// local state to diff against. The pass excludes writers (wmu), so
// trees and payloads see stable replicas.

// TableRepair records one target-table repair.
type TableRepair struct {
	Table  string `json:"table"`
	Source string `json:"source"`
	Target string `json:"target"`
	// Leaves lists the divergent leaf indexes repaired; empty for Full.
	Leaves []int `json:"leaves,omitempty"`
	// Full marks a whole-table resync (corruption, or a scoped repair
	// that failed to converge).
	Full         bool `json:"full,omitempty"`
	RowsDeleted  int  `json:"rows_deleted"`
	CellsApplied int  `json:"cells_applied"`
}

// RepairReport summarizes one anti-entropy pass.
type RepairReport struct {
	// TablesChecked counts (table, replica-group) tree comparisons.
	TablesChecked int `json:"tables_checked"`
	// Repairs lists every repair applied, in table order.
	Repairs []TableRepair `json:"repairs,omitempty"`
	// Failures lists nodes/tables the pass could not converge (node
	// down, source unavailable) with reasons.
	Failures []string `json:"failures,omitempty"`
	// Cleared lists previously-dirty nodes the pass fully converged and
	// re-admitted to leader/source duty.
	Cleared []string `json:"cleared,omitempty"`
	// Converged reports whether every reachable replica of every table
	// matched its source's Merkle root when the pass ended.
	Converged bool `json:"converged"`
}

// RepairAll runs one anti-entropy pass over every table the router
// placed. Writes are excluded for the duration.
func (r *Router) RepairAll() (*RepairReport, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	return r.repairTables(r.ownedTables())
}

// RepairTable runs the pass for one table only.
func (r *Router) RepairTable(table string) (*RepairReport, error) {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	r.mu.Lock()
	_, ok := r.owners[table]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("topology: table %q has no recorded placement", table)
	}
	return r.repairTables([]string{table})
}

// ownedTables snapshots placed table names, sorted.
func (r *Router) ownedTables() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.owners))
	for t := range r.owners {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// isCorruptionErr matches typed corruption-kind wire errors.
func isCorruptionErr(err error) bool {
	var te *transport.Error
	return errors.As(err, &te) && te.Kind == transport.KindCorruption
}

func (r *Router) repairTables(tables []string) (*RepairReport, error) {
	rep := &RepairReport{Converged: true}
	// failedNodes collects nodes with any unconverged table this pass;
	// only fully-converged dirty nodes are re-admitted at the end.
	failedNodes := map[string]bool{}
	touchedNodes := map[string]bool{}
	for _, table := range tables {
		r.mu.Lock()
		names := append([]string(nil), r.owners[table]...)
		r.mu.Unlock()
		group := r.nodesFor(names)
		if len(group) < 2 {
			continue // nothing to converge against
		}
		rep.TablesChecked++
		for _, nd := range group {
			touchedNodes[nd.name] = true
		}
		src, srcTree := r.pickSource(table, group, rep, failedNodes)
		if src == nil {
			continue
		}
		for _, nd := range group {
			if nd == src {
				continue
			}
			if err := r.repairTarget(table, src, srcTree, nd, rep); err != nil {
				rep.Converged = false
				failedNodes[nd.name] = true
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s on %s: %v", table, nd.name, err))
			}
		}
	}
	// Re-admit dirty nodes the pass fully converged.
	r.mu.Lock()
	for name := range r.dirty {
		if touchedNodes[name] && !failedNodes[name] {
			delete(r.dirty, name)
			rep.Cleared = append(rep.Cleared, name)
		}
	}
	r.mu.Unlock()
	sort.Strings(rep.Cleared)
	// Repair tombstones were stamped with node-local clocks; re-sync the
	// router's stamp source above them.
	r.syncClocks()
	return rep, nil
}

// pickSource chooses the table's repair source: the first CLEAN replica
// whose tree builds (a clean replica holds every acked write). If no
// clean replica can summarize, the first dirty one that can stands in —
// best effort beats nothing, and the report says so.
func (r *Router) pickSource(table string, group []*node, rep *RepairReport, failedNodes map[string]bool) (*node, *merkle.Tree) {
	req := transport.TreeRequest{Table: table, Leaves: r.leaves}
	for pass := 0; pass < 2; pass++ {
		for _, nd := range group {
			if (pass == 0) == r.isDirty(nd.name) {
				continue
			}
			tree, err := nd.svc.MerkleTree(req)
			if err != nil {
				continue
			}
			if pass == 1 {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: no clean source; using dirty node %s", table, nd.name))
				rep.Converged = false
			}
			return nd, tree
		}
	}
	rep.Converged = false
	for _, nd := range group {
		failedNodes[nd.name] = true
	}
	rep.Failures = append(rep.Failures, fmt.Sprintf("%s: no replica could summarize the table", table))
	return nil, nil
}

// repairTarget converges one target replica of one table against the
// source, escalating corruption (and scoped repairs that fail to
// converge) to a full resync, and verifying the Merkle roots match
// afterwards.
func (r *Router) repairTarget(table string, src *node, srcTree *merkle.Tree, target *node, rep *RepairReport) error {
	treq := transport.TreeRequest{Table: table, Leaves: r.leaves}
	ttree, err := target.svc.MerkleTree(treq)
	full := false
	var diverged []int
	switch {
	case isCorruptionErr(err):
		full = true
	case err != nil:
		return err // unreachable node: repair next pass
	default:
		diverged, err = merkle.Diff(srcTree, ttree)
		if err != nil {
			return err
		}
		if len(diverged) == 0 {
			return nil
		}
	}
	stats, err := r.ship(table, src, target, diverged, full)
	if err != nil {
		return err
	}
	tr := TableRepair{Table: table, Source: src.name, Target: target.name,
		Leaves: diverged, Full: full, RowsDeleted: stats.RowsDeleted, CellsApplied: stats.CellsApplied}
	// Verify convergence; a scoped repair that did not converge (e.g.
	// divergence inside dead versions it cannot see) escalates once.
	if again, err := target.svc.MerkleTree(treq); err != nil || again.Root() != srcTree.Root() {
		if !full {
			stats, serr := r.ship(table, src, target, nil, true)
			if serr != nil {
				rep.Repairs = append(rep.Repairs, tr)
				return serr
			}
			tr.Full, tr.Leaves = true, nil
			tr.RowsDeleted, tr.CellsApplied = stats.RowsDeleted, tr.CellsApplied+stats.CellsApplied
			if again, err = target.svc.MerkleTree(treq); err == nil && again.Root() == srcTree.Root() {
				rep.Repairs = append(rep.Repairs, tr)
				return nil
			}
		}
		rep.Repairs = append(rep.Repairs, tr)
		if err != nil {
			return fmt.Errorf("post-repair tree: %w", err)
		}
		return fmt.Errorf("tree still diverges from source %s after repair", src.name)
	}
	rep.Repairs = append(rep.Repairs, tr)
	return nil
}

// ship moves one repair payload from source to target: the divergent
// leaves' raw cells (or the whole table when full).
func (r *Router) ship(table string, src, target *node, leaves []int, full bool) (*transport.RepairStats, error) {
	var idx []int
	if !full {
		idx = leaves
	}
	payload, err := src.svc.FetchRange(transport.RangeRequest{Table: table, Leaves: r.leaves, Indexes: idx})
	if err != nil {
		return nil, fmt.Errorf("fetch from source %s: %w", src.name, err)
	}
	stats, err := target.svc.Repair(transport.RepairRequest{
		Table: table, Leaves: r.leaves, Indexes: idx, Full: full, Range: *payload})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// syncClocks raises the router's timestamp source above every reachable
// node's logical clock.
func (r *Router) syncClocks() {
	for _, nd := range r.nodes {
		if h, err := nd.svc.Health(); err == nil {
			r.bumpTS(h.Clock)
		}
	}
}

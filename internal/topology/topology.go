// Package topology routes a replicated rank-join deployment: it maps
// relations onto replica groups of region servers, drives the
// deterministic replication protocol for writes, dispatches whole
// queries to covering replicas with failover, and runs Merkle
// anti-entropy to repair replicas that missed writes or rotted at rest.
//
// The protocol follows from one invariant: replicas of a relation are
// BYTE-IDENTICAL, base and index tables alike. The router makes every
// mutation deterministic before it ships — it resolves upserts against
// the leader (reading the current tuple once), stamps the operation
// with a single router-assigned timestamp, and sends the identical
// resolved WriteOp to every replica, which applies it with full index
// maintenance at that timestamp. Router stamps are kept above every
// node's logical clock (nodes report a high-water mark in Health), so
// node-local stamps never shadow replicated cells.
//
// Writes ack at a quorum (majority of the replication factor by
// default); a write that cannot reach its leader fails outright, and a
// follower that misses an acked write is marked dirty — excluded from
// leader duty, quorum counting, and repair-source duty until
// anti-entropy has caught it back up. The first clean replica in
// assignment order is therefore guaranteed to hold every acknowledged
// write, which is exactly what makes it a safe repair source.
//
// Reads and queries ship whole to one covering replica (the paper runs
// rank-join inside the store, next to the data) and fail over across
// the group; only when no replica can serve does the caller see a
// typed *NoReplicaError.
package topology

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Config tunes a Router.
type Config struct {
	// Replication is the number of replicas hosting each relation.
	// 0 (or anything >= the node count) means full replication: every
	// node hosts every relation and can serve any query. Smaller
	// factors save space but queries need a node covering both sides.
	Replication int
	// WriteQuorum is the number of replica acks a write needs before it
	// is acknowledged. 0 means a majority of Replication.
	WriteQuorum int
	// MerkleLeaves is the anti-entropy tree resolution (rounded up to a
	// power of two; default 64). More leaves localize repairs to fewer
	// rows at the cost of larger trees on the wire.
	MerkleLeaves int
}

// Handle names one region server for router construction.
type Handle struct {
	Name string
	Svc  transport.RegionService
}

// node is the router's view of one region server.
type node struct {
	name string
	svc  transport.RegionService
}

// DefaultMerkleLeaves is the anti-entropy tree resolution when Config
// leaves it unset.
const DefaultMerkleLeaves = 64

// Router fronts a set of region servers as one logical store.
type Router struct {
	nodes  []*node
	rf     int
	quorum int
	leaves int

	// ts is the group-write timestamp source: strictly increasing, and
	// re-synced above every node clock after DDL and repair (the two
	// paths where nodes stamp locally).
	ts atomic.Int64

	mu        sync.Mutex
	relations map[string][]string        // guarded by: mu — relation → replica node names, assignment order
	owners    map[string][]string        // guarded by: mu — table → node names expected to host it
	dirty     map[string]string          // guarded by: mu — node name → why it may be missing acked writes
	rr        uint64                     // guarded by: mu — round-robin cursor for query dispatch
	healthsnp map[string]map[string]bool // guarded by: mu — node → table set at last DDL (ownership deltas)

	// wmu serializes the resolve→stamp→replicate write sequence and
	// excludes writes during anti-entropy passes, so repair payloads
	// and trees see stable replicas.
	wmu sync.Mutex
}

// New builds a router over the given nodes. Node order is significant:
// replica groups are assigned contiguous runs of it, and the first
// clean replica in a group acts as its leader.
func New(nodes []Handle, cfg Config) (*Router, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("topology: need at least one node")
	}
	seen := map[string]bool{}
	r := &Router{
		relations: map[string][]string{},
		owners:    map[string][]string{},
		dirty:     map[string]string{},
		healthsnp: map[string]map[string]bool{},
	}
	for _, h := range nodes {
		if h.Name == "" || h.Svc == nil {
			return nil, fmt.Errorf("topology: node needs a name and a service")
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("topology: duplicate node name %q", h.Name)
		}
		seen[h.Name] = true
		r.nodes = append(r.nodes, &node{name: h.Name, svc: h.Svc})
	}
	r.rf = cfg.Replication
	if r.rf <= 0 || r.rf > len(r.nodes) {
		r.rf = len(r.nodes)
	}
	r.quorum = cfg.WriteQuorum
	if r.quorum <= 0 {
		r.quorum = r.rf/2 + 1
	}
	if r.quorum > r.rf {
		return nil, fmt.Errorf("topology: write quorum %d exceeds replication factor %d", r.quorum, r.rf)
	}
	r.leaves = cfg.MerkleLeaves
	if r.leaves <= 0 {
		r.leaves = DefaultMerkleLeaves
	}
	return r, nil
}

// Close closes every node service handle.
func (r *Router) Close() error {
	var first error
	for _, n := range r.nodes {
		if err := n.svc.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nodes lists node names in topology order.
func (r *Router) Nodes() []string {
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Replication returns the effective replication factor.
func (r *Router) Replication() int { return r.rf }

// MerkleLeaves returns the anti-entropy tree resolution.
func (r *Router) MerkleLeaves() int { return r.leaves }

// NoReplicaError reports a read or query that no replica could serve.
type NoReplicaError struct {
	// Op names the failed operation ("topk", "get", ...).
	Op string
	// Relation (or relation pair) the operation targeted.
	Relation string
	// Tried lists the replicas attempted, in dispatch order.
	Tried []string
	// Errs holds each attempt's failure, aligned with Tried.
	Errs []error
}

func (e *NoReplicaError) Error() string {
	parts := make([]string, len(e.Tried))
	for i := range e.Tried {
		parts[i] = fmt.Sprintf("%s: %v", e.Tried[i], e.Errs[i])
	}
	return fmt.Sprintf("topology: no replica could serve %s(%s): [%s]", e.Op, e.Relation, strings.Join(parts, "; "))
}

// Unwrap exposes the attempt errors for errors.Is/As matching (e.g.
// transport.ErrUnavailable, corruption kinds).
func (e *NoReplicaError) Unwrap() []error { return e.Errs }

// ReplicationError reports a write that was not acknowledged: it never
// reached its leader, or reached fewer replicas than the quorum.
// Replicas listed in Failed are marked dirty; anti-entropy converges
// them. When Acked > 0 the write IS durable on the acked replicas —
// re-submitting it is safe (the resolution re-reads current state).
type ReplicationError struct {
	Relation string
	// Acked is how many replicas applied the write.
	Acked int
	// Quorum is how many were needed.
	Quorum int
	// Failed maps replica names to their failures.
	Failed map[string]error
}

func (e *ReplicationError) Error() string {
	var parts []string
	for n, err := range e.Failed {
		parts = append(parts, fmt.Sprintf("%s: %v", n, err))
	}
	sort.Strings(parts)
	return fmt.Sprintf("topology: write to %q acked by %d/%d replicas (quorum %d): [%s]",
		e.Relation, e.Acked, e.Quorum, e.Quorum, strings.Join(parts, "; "))
}

// Unwrap exposes the per-replica failures.
func (e *ReplicationError) Unwrap() []error {
	out := make([]error, 0, len(e.Failed))
	for _, err := range e.Failed {
		out = append(out, err)
	}
	return out
}

// assignLocked picks a relation's replica node names: rf contiguous
// nodes starting at a hash of the name (range-assignment flavor — the
// groups of different relations overlap and rotate around the node
// ring). Callers hold r.mu.
func (r *Router) assignLocked(relation string) []string {
	h := fnv.New32a()
	h.Write([]byte(relation))
	start := int(h.Sum32()) % len(r.nodes)
	if start < 0 {
		start += len(r.nodes)
	}
	if r.rf == len(r.nodes) {
		start = 0 // full replication: keep topology order for leader stability
	}
	out := make([]string, r.rf)
	for i := 0; i < r.rf; i++ {
		out[i] = r.nodes[(start+i)%len(r.nodes)].name
	}
	return out
}

func (r *Router) nodeByName(name string) *node {
	for _, n := range r.nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

func (r *Router) nodesFor(names []string) []*node {
	out := make([]*node, 0, len(names))
	for _, name := range names {
		if n := r.nodeByName(name); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// isDirty reports whether a node is excluded from leader/source duty.
func (r *Router) isDirty(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, d := r.dirty[name]
	return d
}

// markDirty records that a node may be missing acked writes.
func (r *Router) markDirty(name string, cause error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, d := r.dirty[name]; !d {
		r.dirty[name] = cause.Error()
	}
}

// clearDirty re-admits a repaired node.
func (r *Router) clearDirty(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.dirty, name)
}

// Dirty lists nodes currently excluded from leader/source duty, sorted.
func (r *Router) Dirty() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.dirty))
	for n := range r.dirty {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// bumpTS raises the timestamp source to at least v.
func (r *Router) bumpTS(v int64) {
	for {
		cur := r.ts.Load()
		if v <= cur || r.ts.CompareAndSwap(cur, v) {
			return
		}
	}
}

// nextTS stamps one group write.
func (r *Router) nextTS() int64 { return r.ts.Add(1) }

// ddlLocked runs a schema-changing call on every listed node (all must
// succeed — setup operations are not quorum-based), then records any
// tables the call created as owned by exactly those nodes, and re-syncs
// the timestamp source above the nodes' clocks. Callers hold r.mu.
func (r *Router) ddlLocked(names []string, call func(transport.RegionService) error) error {
	nodes := r.nodesFor(names)
	for _, n := range nodes {
		if err := call(n.svc); err != nil {
			return fmt.Errorf("topology: ddl on node %s: %w", n.name, err)
		}
	}
	for _, n := range nodes {
		h, err := n.svc.Health()
		if err != nil {
			return fmt.Errorf("topology: health on node %s after ddl: %w", n.name, err)
		}
		r.bumpTS(h.Clock)
		before := r.healthsnp[n.name]
		after := make(map[string]bool, len(h.Tables))
		for _, t := range h.Tables {
			after[t] = true
			if !before[t] && r.owners[t] == nil {
				r.owners[t] = names
			}
		}
		r.healthsnp[n.name] = after
	}
	return nil
}

// DefineRelation creates a relation on its replica group. Idempotent.
func (r *Router) DefineRelation(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.relations[name]; ok {
		return nil
	}
	names := r.assignLocked(name)
	if err := r.ddlLocked(names, func(svc transport.RegionService) error {
		return svc.DefineRelation(name)
	}); err != nil {
		return err
	}
	r.relations[name] = names
	return nil
}

// Relations lists defined relations, sorted.
func (r *Router) Relations() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.relations))
	for n := range r.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ReplicasFor returns a relation's replica node names in assignment
// order, or nil if undefined.
func (r *Router) ReplicasFor(relation string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.relations[relation]...)
}

// coveringLocked intersects two replica groups in the left group's
// order — the nodes able to serve a join of the pair.
func (r *Router) coveringLocked(left, right string) ([]string, error) {
	l, ok := r.relations[left]
	if !ok {
		return nil, fmt.Errorf("topology: relation %q not defined", left)
	}
	rt, ok := r.relations[right]
	if !ok {
		return nil, fmt.Errorf("topology: relation %q not defined", right)
	}
	rset := make(map[string]bool, len(rt))
	for _, n := range rt {
		rset[n] = true
	}
	var out []string
	for _, n := range l {
		if rset[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("topology: no node hosts both %q and %q (replication %d of %d nodes); raise Replication",
			left, right, r.rf, len(r.nodes))
	}
	return out, nil
}

// EnsureIndexes builds the requested index families on every node able
// to serve the query (the covering set). Each replica builds from its
// own replicated base data; determinism keeps the results identical.
func (r *Router) EnsureIndexes(req transport.EnsureRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names, err := r.coveringLocked(req.Left, req.Right)
	if err != nil {
		return err
	}
	return r.ddlLocked(names, func(svc transport.RegionService) error {
		return svc.EnsureIndexes(req)
	})
}

// replicaSet snapshots a relation's replica nodes.
func (r *Router) replicaSet(relation string) ([]*node, error) {
	r.mu.Lock()
	names := r.relations[relation]
	r.mu.Unlock()
	if names == nil {
		return nil, fmt.Errorf("topology: relation %q not defined", relation)
	}
	return r.nodesFor(names), nil
}

// resolveLeader finds the first clean replica that answers a resolution
// read for rowKey, marking unreachable candidates dirty on the way (a
// node down now will miss the write we are about to ship). rowKey ""
// skips the read (batch loads resolve nothing).
func (r *Router) resolveLeader(relation, rowKey string, reps []*node) (*node, *transport.TupleData, error) {
	failed := map[string]error{}
	for _, nd := range reps {
		if r.isDirty(nd.name) {
			failed[nd.name] = errors.New("dirty: awaiting repair")
			continue
		}
		if rowKey == "" {
			return nd, nil, nil
		}
		resp, err := nd.svc.GetTuple(relation, rowKey)
		if err != nil {
			if errors.Is(err, transport.ErrUnavailable) {
				r.markDirty(nd.name, err)
				failed[nd.name] = err
				continue
			}
			return nil, nil, err
		}
		return nd, resp.Tuple, nil
	}
	return nil, nil, &ReplicationError{Relation: relation, Acked: 0, Quorum: r.quorum, Failed: failed}
}

// replicate ships one resolved, stamped op: leader first (its failure
// fails the write outright — the leader is the repair source of record,
// so nothing may be acked that it does not hold), then the remaining
// replicas, acking at quorum. Dirty replicas are skipped — they are
// already behind; anti-entropy carries this op to them later.
func (r *Router) replicate(leader *node, reps []*node, op transport.WriteOp) error {
	if err := leader.svc.Apply(op); err != nil {
		// The leader may hold a partial application; treat it as dirty
		// until anti-entropy verifies it.
		r.markDirty(leader.name, err)
		return &ReplicationError{Relation: op.Relation, Acked: 0, Quorum: r.quorum,
			Failed: map[string]error{leader.name: err}}
	}
	acked := 1
	failed := map[string]error{}
	for _, nd := range reps {
		if nd == leader {
			continue
		}
		if r.isDirty(nd.name) {
			failed[nd.name] = errors.New("dirty: awaiting repair")
			continue
		}
		if err := nd.svc.Apply(op); err != nil {
			r.markDirty(nd.name, err)
			failed[nd.name] = err
			continue
		}
		acked++
	}
	if acked < r.quorum {
		return &ReplicationError{Relation: op.Relation, Acked: acked, Quorum: r.quorum, Failed: failed}
	}
	return nil
}

// Upsert writes one tuple through the replication protocol: resolve at
// the leader (insert or update), stamp once, replicate, ack at quorum.
func (r *Router) Upsert(relation string, t transport.TupleData) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	reps, err := r.replicaSet(relation)
	if err != nil {
		return err
	}
	leader, old, err := r.resolveLeader(relation, t.RowKey, reps)
	if err != nil {
		return err
	}
	op := transport.WriteOp{Relation: relation, Kind: transport.OpInsert, New: &t, TS: r.nextTS()}
	if old != nil {
		op.Kind = transport.OpUpdate
		op.Old = old
	}
	return r.replicate(leader, reps, op)
}

// Delete removes a tuple by row key (a no-op if absent), resolving its
// current state at the leader first.
func (r *Router) Delete(relation, rowKey string) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	reps, err := r.replicaSet(relation)
	if err != nil {
		return err
	}
	leader, old, err := r.resolveLeader(relation, rowKey, reps)
	if err != nil {
		return err
	}
	if old == nil {
		return nil
	}
	op := transport.WriteOp{Relation: relation, Kind: transport.OpDelete, Old: old, TS: r.nextTS()}
	return r.replicate(leader, reps, op)
}

// BatchInsert loads many NEW tuples as one replicated group write with
// a single shared timestamp (no per-row resolution — reused row keys
// strand index entries, exactly as RelationHandle.BatchInsert warns).
func (r *Router) BatchInsert(relation string, tuples []transport.TupleData) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	reps, err := r.replicaSet(relation)
	if err != nil {
		return err
	}
	leader, _, err := r.resolveLeader(relation, "", reps)
	if err != nil {
		return err
	}
	op := transport.WriteOp{Relation: relation, Kind: transport.OpBatch, Batch: tuples, TS: r.nextTS()}
	return r.replicate(leader, reps, op)
}

// Get resolves a relation row, preferring the leader (read-your-writes)
// and failing over across clean replicas, then dirty ones (a dirty
// replica may serve a stale tuple, but stale beats unavailable once no
// clean replica is left).
func (r *Router) Get(relation, rowKey string) (*transport.TupleData, error) {
	reps, err := r.replicaSet(relation)
	if err != nil {
		return nil, err
	}
	var tried []string
	var errs []error
	for pass := 0; pass < 2; pass++ {
		for _, nd := range reps {
			if (pass == 0) == r.isDirty(nd.name) {
				continue
			}
			resp, gerr := nd.svc.GetTuple(relation, rowKey)
			if gerr != nil {
				tried = append(tried, nd.name)
				errs = append(errs, gerr)
				if errors.Is(gerr, transport.ErrUnavailable) {
					continue
				}
				return nil, gerr
			}
			return resp.Tuple, nil
		}
	}
	return nil, &NoReplicaError{Op: "get", Relation: relation, Tried: tried, Errs: errs}
}

// Query ships one top-k execution to a covering replica, rotating the
// starting replica per call and failing over on unavailability or
// corruption (another replica can still serve an undamaged answer). It
// returns the serving node's name: page tokens are node-local, so the
// caller pins follow-up pages with QueryOn. Only when every covering
// replica fails does the caller see a *NoReplicaError.
func (r *Router) Query(req transport.QueryRequest) (*transport.ResultData, string, error) {
	r.mu.Lock()
	names, err := r.coveringLocked(req.Left, req.Right)
	start := int(r.rr)
	r.rr++
	r.mu.Unlock()
	if err != nil {
		return nil, "", err
	}
	reps := r.nodesFor(names)
	var tried []string
	var errs []error
	for pass := 0; pass < 2; pass++ {
		for i := range reps {
			nd := reps[(start+i)%len(reps)]
			if (pass == 0) == r.isDirty(nd.name) {
				continue
			}
			res, qerr := nd.svc.TopK(req)
			if qerr != nil {
				var te *transport.Error
				retriable := errors.Is(qerr, transport.ErrUnavailable) ||
					(errors.As(qerr, &te) && te.Kind == transport.KindCorruption)
				tried = append(tried, nd.name)
				errs = append(errs, qerr)
				if retriable {
					continue
				}
				return nil, "", qerr
			}
			return res, nd.name, nil
		}
	}
	return nil, "", &NoReplicaError{Op: "topk", Relation: req.Left + "+" + req.Right, Tried: tried, Errs: errs}
}

// QueryOn pins one execution to a named node — the sticky dispatch for
// node-local page tokens. Unavailability surfaces to the caller, which
// restarts the cursor on a survivor.
func (r *Router) QueryOn(nodeName string, req transport.QueryRequest) (*transport.ResultData, error) {
	nd := r.nodeByName(nodeName)
	if nd == nil {
		return nil, fmt.Errorf("topology: unknown node %q", nodeName)
	}
	return nd.svc.TopK(req)
}

// NodeStatus is one node's row in Status.
type NodeStatus struct {
	Name        string   `json:"name"`
	Alive       bool     `json:"alive"`
	Dirty       bool     `json:"dirty"`
	DirtyCause  string   `json:"dirty_cause,omitempty"`
	Relations   []string `json:"relations,omitempty"`
	Tables      int      `json:"tables"`
	Quarantined []string `json:"quarantined,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// Status probes every node and reports liveness, dirtiness, and served
// state — the rjserve /metrics replica-status payload.
func (r *Router) Status() []NodeStatus {
	r.mu.Lock()
	dirty := make(map[string]string, len(r.dirty))
	for k, v := range r.dirty {
		dirty[k] = v
	}
	r.mu.Unlock()
	out := make([]NodeStatus, len(r.nodes))
	for i, nd := range r.nodes {
		st := NodeStatus{Name: nd.name}
		if cause, d := dirty[nd.name]; d {
			st.Dirty, st.DirtyCause = true, cause
		}
		h, err := nd.svc.Health()
		if err != nil {
			st.Error = err.Error()
		} else {
			st.Alive = true
			st.Relations = h.Relations
			st.Tables = len(h.Tables)
			st.Quarantined = h.Quarantined
		}
		out[i] = st
	}
	return out
}

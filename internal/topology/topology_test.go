package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/merkle"
	"repro/internal/transport"
)

// fakeNode is a deterministic in-memory region service: one table per
// relation, two cells per tuple, clocks advanced by applied stamps. It
// is self-consistent across Apply/MerkleTree/FetchRange/Repair, which
// is all the router protocol needs.
type fakeNode struct {
	name string

	mu      sync.Mutex
	down    bool                                       // guarded by: mu
	corrupt map[string]bool                            // guarded by: mu — table → summaries fail typed
	rels    map[string]bool                            // guarded by: mu
	tables  map[string]map[string][]transport.CellData // guarded by: mu — table → row → cells
	clock   int64                                      // guarded by: mu
	applied int                                        // guarded by: mu — Apply calls that landed
}

func newFakeNode(name string) *fakeNode {
	return &fakeNode{name: name, corrupt: map[string]bool{}, rels: map[string]bool{},
		tables: map[string]map[string][]transport.CellData{}}
}

func (f *fakeNode) setDown(d bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = d
}

func (f *fakeNode) setCorrupt(table string, c bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt[table] = c
}

func (f *fakeNode) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return transport.Unavailable("node %s down", f.name)
	}
	return nil
}

func relTable(relation string) string { return "rel_" + relation }

func (f *fakeNode) Health() (*transport.HealthInfo, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	h := &transport.HealthInfo{Node: f.name, Clock: f.clock}
	for r := range f.rels {
		h.Relations = append(h.Relations, r)
	}
	for t := range f.tables {
		h.Tables = append(h.Tables, t)
	}
	sort.Strings(h.Relations)
	sort.Strings(h.Tables)
	return h, nil
}

func (f *fakeNode) DefineRelation(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rels[name] = true
	if f.tables[relTable(name)] == nil {
		f.tables[relTable(name)] = map[string][]transport.CellData{}
	}
	return nil
}

func (f *fakeNode) EnsureIndexes(req transport.EnsureRequest) error {
	if err := f.gate(); err != nil {
		return err
	}
	// Model an index build: one derived table plus local clock stamps.
	f.mu.Lock()
	defer f.mu.Unlock()
	t := "isl_" + req.Left + "_" + req.Right
	if f.tables[t] == nil {
		f.tables[t] = map[string][]transport.CellData{}
	}
	f.clock += 100
	return nil
}

func tupleCells(t *transport.TupleData, ts int64) []transport.CellData {
	return []transport.CellData{
		{Row: t.RowKey, Family: "d", Qualifier: "join", Value: []byte(t.JoinValue), Timestamp: ts},
		{Row: t.RowKey, Family: "d", Qualifier: "score", Value: []byte(fmt.Sprint(t.Score)), Timestamp: ts},
	}
}

func (f *fakeNode) Apply(op transport.WriteOp) error {
	if err := f.gate(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tbl := f.tables[relTable(op.Relation)]
	if tbl == nil {
		return &transport.Error{Kind: transport.KindBadRequest, Msg: "no relation " + op.Relation}
	}
	if op.TS > f.clock {
		f.clock = op.TS
	}
	switch op.Kind {
	case transport.OpInsert, transport.OpUpdate:
		tbl[op.New.RowKey] = tupleCells(op.New, op.TS)
	case transport.OpDelete:
		delete(tbl, op.Old.RowKey)
	case transport.OpBatch:
		for i := range op.Batch {
			tbl[op.Batch[i].RowKey] = tupleCells(&op.Batch[i], op.TS)
		}
	default:
		return &transport.Error{Kind: transport.KindBadRequest, Msg: "kind " + op.Kind}
	}
	f.applied++
	return nil
}

func (f *fakeNode) GetTuple(relation, rowKey string) (*transport.GetResponse, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tbl := f.tables[relTable(relation)]
	if tbl == nil {
		return nil, &transport.Error{Kind: transport.KindBadRequest, Msg: "no relation " + relation}
	}
	cells, ok := tbl[rowKey]
	if !ok {
		return &transport.GetResponse{}, nil
	}
	return &transport.GetResponse{Tuple: &transport.TupleData{RowKey: rowKey, JoinValue: string(cells[0].Value)}}, nil
}

func (f *fakeNode) TopK(req transport.QueryRequest) (*transport.ResultData, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupt[relTable(req.Left)] {
		return nil, &transport.Error{Kind: transport.KindCorruption, Msg: "checksum"}
	}
	// Echo which node served; router tests only need dispatch evidence.
	return &transport.ResultData{Algorithm: "fake@" + f.name}, nil
}

func (f *fakeNode) rowDigest(row string, cells []transport.CellData) merkle.Digest {
	parts := make([][]byte, 0, len(cells)*2)
	for _, c := range cells {
		parts = append(parts, []byte(c.Qualifier), c.Value, []byte(fmt.Sprint(c.Timestamp)))
	}
	return merkle.HashRow(row, parts...)
}

func (f *fakeNode) MerkleTree(req transport.TreeRequest) (*merkle.Tree, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupt[req.Table] {
		return nil, &transport.Error{Kind: transport.KindCorruption, Msg: "checksum failed in " + req.Table}
	}
	b := merkle.NewBuilder(req.Leaves)
	for row, cells := range f.tables[req.Table] {
		b.Add(row, f.rowDigest(row, cells))
	}
	return b.Build(), nil
}

func (f *fakeNode) FetchRange(req transport.RangeRequest) (*transport.RangeData, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupt[req.Table] {
		return nil, &transport.Error{Kind: transport.KindCorruption, Msg: "checksum failed in " + req.Table}
	}
	leaves := merkle.NormalizeLeaves(req.Leaves)
	want := map[int]bool{}
	for _, i := range req.Indexes {
		want[i] = true
	}
	out := &transport.RangeData{Families: []string{"d"}}
	var rows []string
	for row := range f.tables[req.Table] {
		if len(req.Indexes) > 0 && !want[merkle.LeafIndex(leaves, row)] {
			continue
		}
		rows = append(rows, row)
	}
	sort.Strings(rows)
	for _, row := range rows {
		out.Rows = append(out.Rows, row)
		out.Cells = append(out.Cells, f.tables[req.Table][row]...)
	}
	return out, nil
}

func (f *fakeNode) Repair(req transport.RepairRequest) (*transport.RepairStats, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &transport.RepairStats{}
	tbl := f.tables[req.Table]
	if req.Full || tbl == nil {
		tbl = map[string][]transport.CellData{}
		f.tables[req.Table] = tbl
		f.corrupt[req.Table] = false // replaced wholesale
	} else {
		leaves := merkle.NormalizeLeaves(req.Leaves)
		want := map[int]bool{}
		for _, i := range req.Indexes {
			want[i] = true
		}
		src := map[string]bool{}
		for _, r := range req.Range.Rows {
			src[r] = true
		}
		for row := range tbl {
			if len(req.Indexes) > 0 && !want[merkle.LeafIndex(leaves, row)] {
				continue
			}
			if !src[row] {
				delete(tbl, row)
				st.RowsDeleted++
			}
		}
	}
	byRow := map[string][]transport.CellData{}
	for _, c := range req.Range.Cells {
		byRow[c.Row] = append(byRow[c.Row], c)
		if c.Timestamp > f.clock {
			f.clock = c.Timestamp
		}
		st.CellsApplied++
	}
	for row, cells := range byRow {
		tbl[row] = cells
	}
	return st, nil
}

func (f *fakeNode) Close() error { return nil }

var _ transport.RegionService = (*fakeNode)(nil)

// cluster3 builds a 3-node fully-replicated router with one relation.
func cluster3(t *testing.T) (*Router, []*fakeNode) {
	t.Helper()
	fakes := []*fakeNode{newFakeNode("n0"), newFakeNode("n1"), newFakeNode("n2")}
	handles := make([]Handle, len(fakes))
	for i, f := range fakes {
		handles[i] = Handle{Name: f.name, Svc: f}
	}
	r, err := New(handles, Config{MerkleLeaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DefineRelation("part"); err != nil {
		t.Fatal(err)
	}
	return r, fakes
}

func tableRows(f *fakeNode, table string) map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]string{}
	for row, cells := range f.tables[table] {
		out[row] = fmt.Sprintf("%s@%d", cells[0].Value, cells[0].Timestamp)
	}
	return out
}

func assertReplicasEqual(t *testing.T, fakes []*fakeNode, table string) {
	t.Helper()
	want := tableRows(fakes[0], table)
	for _, f := range fakes[1:] {
		got := tableRows(f, table)
		if len(got) != len(want) {
			t.Fatalf("%s: %s has %d rows, %s has %d", table, fakes[0].name, len(want), f.name, len(got))
		}
		for row, v := range want {
			if got[row] != v {
				t.Fatalf("%s row %s: %s has %q, %s has %q", table, row, fakes[0].name, v, f.name, got[row])
			}
		}
	}
}

func TestReplicatedWritesAreIdentical(t *testing.T) {
	r, fakes := cluster3(t)
	for i := 0; i < 10; i++ {
		if err := r.Upsert("part", transport.TupleData{RowKey: fmt.Sprintf("p%d", i), JoinValue: "j", Score: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite resolves to an update, delete resolves the old tuple.
	if err := r.Upsert("part", transport.TupleData{RowKey: "p3", JoinValue: "j2", Score: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("part", "p7"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("part", "never-existed"); err != nil {
		t.Fatal(err)
	}
	assertReplicasEqual(t, fakes, "rel_part")
	if got := tableRows(fakes[1], "rel_part"); len(got) != 9 {
		t.Fatalf("rows = %d, want 9", len(got))
	}
}

func TestQuorumWriteSurvivesOneNodeDown(t *testing.T) {
	r, fakes := cluster3(t)
	fakes[2].setDown(true)
	if err := r.Upsert("part", transport.TupleData{RowKey: "a", JoinValue: "j"}); err != nil {
		t.Fatalf("2/3 write should ack: %v", err)
	}
	if d := r.Dirty(); len(d) != 1 || d[0] != "n2" {
		t.Fatalf("dirty = %v, want [n2]", d)
	}
	// Second node down: 1/3 acks < quorum 2 → typed failure.
	fakes[1].setDown(true)
	err := r.Upsert("part", transport.TupleData{RowKey: "b", JoinValue: "j"})
	var re *ReplicationError
	if !errors.As(err, &re) || re.Acked != 1 || re.Quorum != 2 {
		t.Fatalf("err = %v, want ReplicationError acked 1 quorum 2", err)
	}
}

func TestLeaderFailoverOnWrite(t *testing.T) {
	r, fakes := cluster3(t)
	fakes[0].setDown(true) // topology-order leader dies
	if err := r.Upsert("part", transport.TupleData{RowKey: "a", JoinValue: "j"}); err != nil {
		t.Fatalf("write with fallback leader: %v", err)
	}
	// n0 revives but stays dirty: it must not serve as leader (it
	// missed the write) until anti-entropy clears it.
	fakes[0].setDown(false)
	if err := r.Upsert("part", transport.TupleData{RowKey: "b", JoinValue: "j"}); err != nil {
		t.Fatal(err)
	}
	if got := tableRows(fakes[0], "rel_part"); len(got) != 0 {
		t.Fatalf("dirty node received writes: %v", got)
	}
	rep, err := r.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || len(rep.Cleared) != 1 || rep.Cleared[0] != "n0" {
		t.Fatalf("repair report = %+v, want converged with n0 cleared", rep)
	}
	assertReplicasEqual(t, fakes, "rel_part")
	if len(r.Dirty()) != 0 {
		t.Fatalf("dirty after repair = %v", r.Dirty())
	}
}

func TestQueryFailoverAndNoReplicaError(t *testing.T) {
	r, fakes := cluster3(t)
	req := transport.QueryRequest{Left: "part", Right: "part", Score: "sum", K: 1}
	res, node, err := r.Query(req)
	if err != nil || node == "" {
		t.Fatalf("query: %v (node %q)", err, node)
	}
	if res.Algorithm != "fake@"+node {
		t.Fatalf("served by %s but reported node %s", res.Algorithm, node)
	}
	for _, f := range fakes {
		f.setDown(true)
	}
	_, _, err = r.Query(req)
	var nre *NoReplicaError
	if !errors.As(err, &nre) || len(nre.Tried) != 3 {
		t.Fatalf("err = %v, want NoReplicaError after trying 3", err)
	}
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("NoReplicaError should unwrap to ErrUnavailable, got %v", err)
	}
}

func TestQueryFailsOverOnCorruption(t *testing.T) {
	r, fakes := cluster3(t)
	// Corrupt the serving table on two nodes; the third must answer.
	fakes[0].setCorrupt("rel_part", true)
	fakes[1].setCorrupt("rel_part", true)
	for i := 0; i < 4; i++ { // whatever the rotation start, it must land on n2
		res, node, err := r.Query(transport.QueryRequest{Left: "part", Right: "part", Score: "sum", K: 1})
		if err != nil {
			t.Fatal(err)
		}
		if node != "n2" || res.Algorithm != "fake@n2" {
			t.Fatalf("served by %s, want n2", node)
		}
	}
}

func TestAntiEntropyRepairsDivergence(t *testing.T) {
	r, fakes := cluster3(t)
	for i := 0; i < 20; i++ {
		if err := r.Upsert("part", transport.TupleData{RowKey: fmt.Sprintf("p%02d", i), JoinValue: "v1"}); err != nil {
			t.Fatal(err)
		}
	}
	// n1 sleeps through updates and a delete.
	fakes[1].setDown(true)
	if err := r.Upsert("part", transport.TupleData{RowKey: "p05", JoinValue: "v2"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("part", "p11"); err != nil {
		t.Fatal(err)
	}
	fakes[1].setDown(false)
	rep, err := r.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Repairs) == 0 {
		t.Fatal("expected at least one repair")
	}
	for _, tr := range rep.Repairs {
		if tr.Full {
			t.Fatalf("divergence repair escalated to full resync: %+v", tr)
		}
		if tr.Target != "n1" {
			t.Fatalf("repair targeted %s, want n1", tr.Target)
		}
	}
	assertReplicasEqual(t, fakes, "rel_part")
	// Scoped repair: only the divergent leaves' rows moved, not all 20.
	var shipped int
	for _, tr := range rep.Repairs {
		shipped += tr.CellsApplied
	}
	if shipped >= 40 {
		t.Fatalf("scoped repair shipped %d cells — looks like a full copy", shipped)
	}
}

func TestAntiEntropyFullResyncOnCorruption(t *testing.T) {
	r, fakes := cluster3(t)
	for i := 0; i < 8; i++ {
		if err := r.Upsert("part", transport.TupleData{RowKey: fmt.Sprintf("p%d", i), JoinValue: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	fakes[2].setCorrupt("rel_part", true)
	rep, err := r.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("report = %+v", rep)
	}
	var sawFull bool
	for _, tr := range rep.Repairs {
		if tr.Target == "n2" && tr.Full {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatalf("corruption should full-resync n2: %+v", rep.Repairs)
	}
	assertReplicasEqual(t, fakes, "rel_part")
}

func TestRouterStampsDominateNodeClocks(t *testing.T) {
	r, fakes := cluster3(t)
	// EnsureIndexes advances node clocks by local stamping; the router
	// must re-sync so its next write stamp sorts above them.
	if err := r.EnsureIndexes(transport.EnsureRequest{Left: "part", Right: "part", Score: "sum", Algos: []string{"isl"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert("part", transport.TupleData{RowKey: "a", JoinValue: "j"}); err != nil {
		t.Fatal(err)
	}
	rows := tableRows(fakes[0], "rel_part")
	fakes[0].mu.Lock()
	clock := fakes[0].clock
	ts := fakes[0].tables["rel_part"]["a"][0].Timestamp
	fakes[0].mu.Unlock()
	if ts <= 100 {
		t.Fatalf("write ts %d did not dominate node clock (clock %d, rows %v)", ts, clock, rows)
	}
}

func TestStatusReportsHealthAndDirtiness(t *testing.T) {
	r, fakes := cluster3(t)
	fakes[1].setDown(true)
	_ = r.Upsert("part", transport.TupleData{RowKey: "a", JoinValue: "j"})
	st := r.Status()
	if len(st) != 3 {
		t.Fatalf("status rows = %d", len(st))
	}
	if !st[0].Alive || st[0].Dirty {
		t.Fatalf("n0 status = %+v", st[0])
	}
	if st[1].Alive || !st[1].Dirty {
		t.Fatalf("n1 status = %+v", st[1])
	}
}

func TestEnsureIndexTablesAreRepaired(t *testing.T) {
	r, fakes := cluster3(t)
	if err := r.EnsureIndexes(transport.EnsureRequest{Left: "part", Right: "part", Score: "sum", Algos: []string{"isl"}}); err != nil {
		t.Fatal(err)
	}
	// Diverge the index table on n2 behind the router's back (models a
	// torn build) and let anti-entropy restore it from the source.
	fakes[2].mu.Lock()
	fakes[2].tables["isl_part_part"]["stray"] = []transport.CellData{{Row: "stray", Qualifier: "q", Value: []byte("x"), Timestamp: 1}}
	fakes[2].mu.Unlock()
	rep, err := r.RepairAll()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("report = %+v", rep)
	}
	if rows := tableRows(fakes[2], "isl_part_part"); len(rows) != 0 {
		t.Fatalf("stray index row survived repair: %v", rows)
	}
}

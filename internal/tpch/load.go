package tpch

import (
	"fmt"
	"strconv"

	"repro/internal/kvstore"
)

// Table and column layout used when loading TPC-H data into the store.
// Every base-data row carries its join value and normalized score in the
// "d" family, the shape all the paper's algorithms consume.
const (
	DataFamily   = "d"
	JoinQual     = "join"
	ScoreQual    = "score"
	PartTable    = "part"
	OrdersTable  = "orders"
	LineitemT    = "lineitem"
	loadBatchLen = 2000
)

// RowKeyPart builds the row key of a part tuple.
func RowKeyPart(pk int) string { return "p" + kvstore.EncodeUint(uint64(pk), 10) }

// RowKeyOrder builds the row key of an order tuple.
func RowKeyOrder(ok int) string { return "o" + kvstore.EncodeUint(uint64(ok), 10) }

// RowKeyLineitem builds the row key of a lineitem tuple.
func RowKeyLineitem(ok, ln int) string {
	return "l" + kvstore.EncodeUint(uint64(ok), 10) + "-" + kvstore.EncodeUint(uint64(ln), 2)
}

// PartCells renders a part as store cells.
func PartCells(p *Part) []kvstore.Cell {
	row := RowKeyPart(p.PartKey)
	return []kvstore.Cell{
		{Row: row, Family: DataFamily, Qualifier: JoinQual, Value: []byte(strconv.Itoa(p.PartKey))},
		{Row: row, Family: DataFamily, Qualifier: ScoreQual, Value: kvstore.FloatValue(p.Score)},
		{Row: row, Family: DataFamily, Qualifier: "name", Value: []byte(p.Name)},
		{Row: row, Family: DataFamily, Qualifier: "retailprice", Value: kvstore.FloatValue(p.RetailPrice)},
	}
}

// OrderCells renders an order as store cells.
func OrderCells(o *Order) []kvstore.Cell {
	row := RowKeyOrder(o.OrderKey)
	return []kvstore.Cell{
		{Row: row, Family: DataFamily, Qualifier: JoinQual, Value: []byte(strconv.Itoa(o.OrderKey))},
		{Row: row, Family: DataFamily, Qualifier: ScoreQual, Value: kvstore.FloatValue(o.Score)},
		{Row: row, Family: DataFamily, Qualifier: "totalprice", Value: kvstore.FloatValue(o.TotalPrice)},
	}
}

// LineitemCells renders a lineitem as store cells. joinOn selects the
// join attribute exposed in the JoinQual column: "partkey" for Q1 joins,
// "orderkey" for Q2 joins.
func LineitemCells(l *Lineitem, joinOn string) ([]kvstore.Cell, error) {
	var join string
	switch joinOn {
	case "partkey":
		join = strconv.Itoa(l.PartKey)
	case "orderkey":
		join = strconv.Itoa(l.OrderKey)
	default:
		return nil, fmt.Errorf("tpch: unknown join attribute %q", joinOn)
	}
	row := RowKeyLineitem(l.OrderKey, l.LineNumber)
	return []kvstore.Cell{
		{Row: row, Family: DataFamily, Qualifier: JoinQual, Value: []byte(join)},
		{Row: row, Family: DataFamily, Qualifier: ScoreQual, Value: kvstore.FloatValue(l.Score)},
		{Row: row, Family: DataFamily, Qualifier: "quantity", Value: []byte(strconv.Itoa(l.Quantity))},
		{Row: row, Family: DataFamily, Qualifier: "extendedprice", Value: kvstore.FloatValue(l.ExtendedPrice)},
	}, nil
}

// Load creates and fills the part, orders, and lineitem tables on the
// cluster, pre-split so each table spans all nodes. The lineitem table's
// join column is set per lineitemJoin ("partkey" or "orderkey").
func Load(c *kvstore.Cluster, d *Data, lineitemJoin string) error {
	families := []string{DataFamily}
	mkSplits := func(prefix string, n, max int) []string {
		// n split points spread uniformly over the key space.
		var out []string
		for i := 1; i <= n; i++ {
			out = append(out, prefix+kvstore.EncodeUint(uint64(max*i/(n+1)), 10))
		}
		return out
	}
	nodes := c.Nodes()
	if _, err := c.CreateTable(PartTable, families, mkSplits("p", nodes-1, len(d.Parts))); err != nil {
		return err
	}
	if _, err := c.CreateTable(OrdersTable, families, mkSplits("o", nodes-1, len(d.Orders))); err != nil {
		return err
	}
	if _, err := c.CreateTable(LineitemT, families, mkSplits("l", nodes-1, len(d.Orders))); err != nil {
		return err
	}

	var batch []kvstore.Cell
	flush := func(table string) error {
		if len(batch) == 0 {
			return nil
		}
		//lint:allow maintcheck TPC-H loader bulk-loads fresh tables; indexes are built after loading
		err := c.BatchPut(table, batch)
		batch = batch[:0]
		return err
	}
	for i := range d.Parts {
		batch = append(batch, PartCells(&d.Parts[i])...)
		if len(batch) >= loadBatchLen {
			if err := flush(PartTable); err != nil {
				return err
			}
		}
	}
	if err := flush(PartTable); err != nil {
		return err
	}
	for i := range d.Orders {
		batch = append(batch, OrderCells(&d.Orders[i])...)
		if len(batch) >= loadBatchLen {
			if err := flush(OrdersTable); err != nil {
				return err
			}
		}
	}
	if err := flush(OrdersTable); err != nil {
		return err
	}
	for i := range d.Lineitems {
		cells, err := LineitemCells(&d.Lineitems[i], lineitemJoin)
		if err != nil {
			return err
		}
		batch = append(batch, cells...)
		if len(batch) >= loadBatchLen {
			if err := flush(LineitemT); err != nil {
				return err
			}
		}
	}
	return flush(LineitemT)
}

// Package tpch generates the evaluation datasets of Section 7: the TPC-H
// Part, Orders, and Lineitem tables at arbitrary scale factors, with the
// pricing formulas of the TPC-H specification, plus the update sets
// (insert/delete batches) used in the online-updates experiment.
//
// At scale factor s, TPC-H defines |Part| = 200,000*s, |Orders| =
// 1,500,000*s, and |Lineitem| ~ 6,000,000*s (each order has 1-7 line
// items). The paper ran s in [10, 500]; this reproduction runs small
// fractional scale factors (the generator is exact at any s) because the
// algorithms' relative behaviour is scale-free once tables span multiple
// regions.
//
// Score normalization: the paper's framework assumes score attributes in
// [0,1] (Section 1.1). Every generated tuple carries both its raw price
// and a normalized score: RetailPrice/maxRetail for parts,
// ExtendedPrice/maxExtended for line items, TotalPrice/maxTotal for
// orders. The bounds are analytic, so normalization is deterministic.
package tpch

import (
	"fmt"
	"math/rand"
)

// Part mirrors the TPC-H PART table columns the queries touch.
type Part struct {
	PartKey     int
	Name        string
	RetailPrice float64 // dollars
	Score       float64 // normalized to [0,1]
}

// Order mirrors the TPC-H ORDERS table columns the queries touch.
type Order struct {
	OrderKey   int
	TotalPrice float64
	Score      float64
}

// Lineitem mirrors the TPC-H LINEITEM table columns the queries touch.
type Lineitem struct {
	OrderKey      int
	PartKey       int
	LineNumber    int
	Quantity      int
	ExtendedPrice float64
	Score         float64
}

// Spec constants from the TPC-H specification.
const (
	partsPerSF     = 200000
	ordersPerSF    = 1500000
	maxLinesPerOrd = 7
	maxQuantity    = 50
)

// retailPriceCents implements the TPC-H price formula:
// p_retailprice = (90000 + ((pk/10) mod 20001) + 100*(pk mod 1000)) / 100.
func retailPriceCents(partKey int) int {
	return 90000 + (partKey/10)%20001 + 100*(partKey%1000)
}

// maxRetailPrice is the analytic upper bound of the formula above.
const maxRetailPrice = (90000 + 20000 + 100*999) / 100.0 // 2099.00

// maxExtendedPrice bounds quantity * retail price.
const maxExtendedPrice = maxQuantity * maxRetailPrice

// maxTotalPrice bounds an order's total (7 max-priced max-quantity lines).
const maxTotalPrice = maxLinesPerOrd * maxExtendedPrice

// Data is one generated TPC-H instance.
type Data struct {
	ScaleFactor float64
	Parts       []Part
	Orders      []Order
	Lineitems   []Lineitem
}

// Generate produces a deterministic TPC-H instance for the scale factor.
// Fractional scale factors shrink all tables proportionally.
func Generate(sf float64, seed int64) *Data {
	if sf <= 0 {
		sf = 0.001
	}
	rng := rand.New(rand.NewSource(seed))
	nParts := int(float64(partsPerSF) * sf)
	if nParts < 10 {
		nParts = 10
	}
	nOrders := int(float64(ordersPerSF) * sf)
	if nOrders < 10 {
		nOrders = 10
	}

	d := &Data{ScaleFactor: sf}
	d.Parts = make([]Part, 0, nParts)
	for pk := 1; pk <= nParts; pk++ {
		price := float64(retailPriceCents(pk)) / 100
		d.Parts = append(d.Parts, Part{
			PartKey:     pk,
			Name:        fmt.Sprintf("part-%d", pk),
			RetailPrice: price,
			Score:       price / maxRetailPrice,
		})
	}

	d.Orders = make([]Order, 0, nOrders)
	d.Lineitems = make([]Lineitem, 0, nOrders*4)
	for ok := 1; ok <= nOrders; ok++ {
		nLines := 1 + rng.Intn(maxLinesPerOrd)
		var total float64
		for ln := 1; ln <= nLines; ln++ {
			pk := 1 + rng.Intn(nParts)
			qty := 1 + rng.Intn(maxQuantity)
			ext := float64(qty) * float64(retailPriceCents(pk)) / 100
			total += ext
			d.Lineitems = append(d.Lineitems, Lineitem{
				OrderKey:      ok,
				PartKey:       pk,
				LineNumber:    ln,
				Quantity:      qty,
				ExtendedPrice: ext,
				Score:         ext / maxExtendedPrice,
			})
		}
		d.Orders = append(d.Orders, Order{
			OrderKey:   ok,
			TotalPrice: total,
			Score:      total / maxTotalPrice,
		})
	}
	return d
}

// Mutation is one entry of an update set.
type Mutation struct {
	// Insert is true for an insertion, false for a deletion.
	Insert bool
	// Table is "orders" or "lineitem".
	Table string
	// The new or deleted tuple (only the matching field is set).
	Order    *Order
	Lineitem *Lineitem
}

// UpdateSet mirrors the paper's refresh workload: "each consisting of
// ~s*600 insertions and ~s*150 deletions for scale-factor s" (Section
// 7.2, Online Updates). Insertions add fresh orders with line items;
// deletions remove existing line items and orders. The nextOrderKey
// should start beyond the base data's largest key.
func (d *Data) UpdateSet(setNo int, seed int64) []Mutation {
	rng := rand.New(rand.NewSource(seed + int64(setNo)*7919))
	nIns := int(600 * d.ScaleFactor)
	if nIns < 6 {
		nIns = 6
	}
	nDel := int(150 * d.ScaleFactor)
	if nDel < 2 {
		nDel = 2
	}
	nParts := len(d.Parts)
	nextOrderKey := len(d.Orders) + setNo*nIns*2 + 1

	var out []Mutation
	// Insertions: whole new orders with their line items. An "insertion
	// unit" in TPC-H RF1 is one order row plus its lineitem rows; we
	// count each row as one mutation like the paper's ~750 total.
	inserted := 0
	for inserted < nIns {
		ok := nextOrderKey
		nextOrderKey++
		nLines := 1 + rng.Intn(maxLinesPerOrd)
		var total float64
		var lines []Lineitem
		for ln := 1; ln <= nLines && inserted+1+len(lines) < nIns+nLines; ln++ {
			pk := 1 + rng.Intn(nParts)
			qty := 1 + rng.Intn(maxQuantity)
			ext := float64(qty) * float64(retailPriceCents(pk)) / 100
			total += ext
			lines = append(lines, Lineitem{
				OrderKey: ok, PartKey: pk, LineNumber: ln, Quantity: qty,
				ExtendedPrice: ext, Score: ext / maxExtendedPrice,
			})
		}
		o := Order{OrderKey: ok, TotalPrice: total, Score: total / maxTotalPrice}
		out = append(out, Mutation{Insert: true, Table: "orders", Order: &o})
		inserted++
		for i := range lines {
			out = append(out, Mutation{Insert: true, Table: "lineitem", Lineitem: &lines[i]})
			inserted++
		}
	}
	// Deletions: existing line items (and their orders occasionally).
	for i := 0; i < nDel && len(d.Lineitems) > 0; i++ {
		li := d.Lineitems[rng.Intn(len(d.Lineitems))]
		out = append(out, Mutation{Insert: false, Table: "lineitem", Lineitem: &li})
		if rng.Intn(4) == 0 {
			o := d.Orders[li.OrderKey-1]
			out = append(out, Mutation{Insert: false, Table: "orders", Order: &o})
		}
	}
	return out
}

// MaxScores reports the analytic normalization bounds (exported for the
// bench harness to invert scores back to prices when printing).
func MaxScores() (retail, extended, total float64) {
	return maxRetailPrice, maxExtendedPrice, maxTotalPrice
}

package tpch

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 42)
	b := Generate(0.001, 42)
	if len(a.Parts) != len(b.Parts) || len(a.Orders) != len(b.Orders) || len(a.Lineitems) != len(b.Lineitems) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatal("same seed produced different lineitems")
		}
	}
	c := Generate(0.001, 43)
	if len(c.Lineitems) == len(a.Lineitems) {
		same := true
		for i := range c.Lineitems {
			if c.Lineitems[i] != a.Lineitems[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGenerateProportions(t *testing.T) {
	d := Generate(0.002, 1)
	if got, want := len(d.Parts), 400; got != want {
		t.Errorf("parts = %d, want %d", got, want)
	}
	if got, want := len(d.Orders), 3000; got != want {
		t.Errorf("orders = %d, want %d", got, want)
	}
	// 1..7 lines per order, expectation 4.
	avg := float64(len(d.Lineitems)) / float64(len(d.Orders))
	if avg < 3.5 || avg > 4.5 {
		t.Errorf("avg lineitems/order = %.2f, want ~4", avg)
	}
}

func TestScoresNormalized(t *testing.T) {
	d := Generate(0.002, 7)
	for _, p := range d.Parts {
		if p.Score <= 0 || p.Score > 1 {
			t.Fatalf("part score %g out of (0,1]", p.Score)
		}
	}
	for _, o := range d.Orders {
		if o.Score <= 0 || o.Score > 1 {
			t.Fatalf("order score %g out of (0,1]", o.Score)
		}
	}
	for _, l := range d.Lineitems {
		if l.Score <= 0 || l.Score > 1 {
			t.Fatalf("lineitem score %g out of (0,1]", l.Score)
		}
		if l.Quantity < 1 || l.Quantity > 50 {
			t.Fatalf("quantity %d out of TPC-H range", l.Quantity)
		}
	}
}

func TestRetailPriceFormula(t *testing.T) {
	// Spot-check against the TPC-H formula.
	if got := retailPriceCents(1); got != 90000+0+100*1 {
		t.Errorf("retailPriceCents(1) = %d", got)
	}
	if got := retailPriceCents(1000); got != 90000+100+0 {
		t.Errorf("retailPriceCents(1000) = %d", got)
	}
	retail, ext, total := MaxScores()
	if retail != 2099.0 {
		t.Errorf("maxRetail = %g, want 2099", retail)
	}
	if ext != 50*2099.0 || total != 7*50*2099.0 {
		t.Errorf("bounds = %g, %g", ext, total)
	}
}

func TestOrderTotalsMatchLineitems(t *testing.T) {
	d := Generate(0.001, 3)
	totals := map[int]float64{}
	for _, l := range d.Lineitems {
		totals[l.OrderKey] += l.ExtendedPrice
	}
	for _, o := range d.Orders {
		if diff := totals[o.OrderKey] - o.TotalPrice; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("order %d total %g != sum of lineitems %g", o.OrderKey, o.TotalPrice, totals[o.OrderKey])
		}
	}
}

func TestUpdateSetShape(t *testing.T) {
	d := Generate(0.01, 5)
	set := d.UpdateSet(1, 99)
	if len(set) == 0 {
		t.Fatal("empty update set")
	}
	var ins, del int
	maxBase := len(d.Orders)
	for _, m := range set {
		if m.Insert {
			ins++
			if m.Table == "orders" && m.Order.OrderKey <= maxBase {
				t.Fatal("inserted order collides with base data")
			}
		} else {
			del++
			if m.Table == "lineitem" && m.Lineitem == nil {
				t.Fatal("deletion without tuple")
			}
		}
	}
	if ins == 0 || del == 0 {
		t.Fatalf("ins=%d del=%d; want both nonzero", ins, del)
	}
	// Paper ratio: ~600 insertions to ~150 deletions (4:1).
	ratio := float64(ins) / float64(del)
	if ratio < 2 || ratio > 8 {
		t.Errorf("insert/delete ratio = %.1f, want ~4", ratio)
	}
	// Distinct sets differ.
	set2 := d.UpdateSet(2, 99)
	if len(set2) > 0 && len(set) > 0 && set2[0].Order != nil && set[0].Order != nil &&
		set2[0].Order.OrderKey == set[0].Order.OrderKey {
		t.Error("set 2 reuses set 1's order keys")
	}
}

func TestRowKeysSortable(t *testing.T) {
	if RowKeyPart(2) >= RowKeyPart(10) {
		t.Error("part keys must sort numerically")
	}
	if RowKeyOrder(2) >= RowKeyOrder(10) {
		t.Error("order keys must sort numerically")
	}
	if RowKeyLineitem(1, 2) >= RowKeyLineitem(1, 3) {
		t.Error("lineitem keys must sort by line number")
	}
	if RowKeyLineitem(1, 7) >= RowKeyLineitem(2, 1) {
		t.Error("lineitem keys must sort by order first")
	}
}

func TestLineitemCellsJoinSelection(t *testing.T) {
	l := Lineitem{OrderKey: 5, PartKey: 9, LineNumber: 1, Quantity: 2, ExtendedPrice: 10, Score: 0.5}
	cells, err := LineitemCells(&l, "partkey")
	if err != nil {
		t.Fatal(err)
	}
	if string(cells[0].Value) != "9" {
		t.Errorf("partkey join value = %q", cells[0].Value)
	}
	cells, err = LineitemCells(&l, "orderkey")
	if err != nil {
		t.Fatal(err)
	}
	if string(cells[0].Value) != "5" {
		t.Errorf("orderkey join value = %q", cells[0].Value)
	}
	if _, err := LineitemCells(&l, "bogus"); err == nil {
		t.Error("bogus join attribute accepted")
	}
}

func TestLoadIntoCluster(t *testing.T) {
	c, err := kvstore.NewCluster(sim.LC(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := Generate(0.0005, 11)
	if err := Load(c, d, "partkey"); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{PartTable, OrdersTable, LineitemT} {
		rows, err := c.ScanAll(kvstore.Scan{Table: tbl, Caching: 10000})
		if err != nil {
			t.Fatal(err)
		}
		var want int
		switch tbl {
		case PartTable:
			want = len(d.Parts)
		case OrdersTable:
			want = len(d.Orders)
		case LineitemT:
			want = len(d.Lineitems)
		}
		if len(rows) != want {
			t.Errorf("%s rows = %d, want %d", tbl, len(rows), want)
		}
		// Every row must expose join + score columns.
		for _, r := range rows[:min(5, len(rows))] {
			if r.Cell(DataFamily, JoinQual) == nil || r.Cell(DataFamily, ScoreQual) == nil {
				t.Fatalf("%s row %s missing join/score columns", tbl, r.Key)
			}
		}
	}
	// Tables must span several regions for MR locality to matter.
	regs, _ := c.TableRegions(LineitemT)
	if len(regs) < 2 {
		t.Errorf("lineitem regions = %d, want multiple", len(regs))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package transport

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"repro/internal/merkle"
)

// Client implements RegionService over one TCP connection to a region
// server. Calls are serialized on the connection; a broken connection
// is redialed once per call before reporting the node unavailable, so a
// restarted node is picked back up transparently.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu   sync.Mutex
	conn net.Conn // guarded by: mu
	seq  uint64   // guarded by: mu
}

// Dial returns a client for the region server at addr. The connection
// is established lazily on first use.
func Dial(addr string) *Client {
	return &Client{addr: addr, dialTimeout: 5 * time.Second}
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// ensureConnLocked dials if needed. Callers hold c.mu.
func (c *Client) ensureConnLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return Unavailable("dial %s: %v", c.addr, err)
	}
	c.conn = conn
	return nil
}

// call performs one request/response exchange, retrying a broken
// connection with one fresh dial.
func (c *Client) call(method string, reqBody any, out any) error {
	var body json.RawMessage
	if reqBody != nil {
		blob, err := json.Marshal(reqBody)
		if err != nil {
			return &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		body = blob
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if err := c.ensureConnLocked(); err != nil {
			return err
		}
		c.seq++
		req := request{Seq: c.seq, Method: method, Body: body}
		err := writeFrame(c.conn, &req)
		var resp response
		if err == nil {
			err = readFrame(c.conn, &resp)
		}
		if err != nil {
			_ = c.conn.Close()
			c.conn = nil
			if attempt == 0 {
				continue // one redial: the server may have restarted
			}
			return ioOrUnavailable(err)
		}
		if resp.Err != nil {
			return resp.Err
		}
		if out != nil && resp.Body != nil {
			if err := json.Unmarshal(resp.Body, out); err != nil {
				return &Error{Kind: KindInternal, Msg: "decode response: " + err.Error()}
			}
		}
		return nil
	}
}

// Health implements RegionService.
func (c *Client) Health() (*HealthInfo, error) {
	var out HealthInfo
	if err := c.call("Health", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DefineRelation implements RegionService.
func (c *Client) DefineRelation(name string) error {
	return c.call("DefineRelation", map[string]string{"name": name}, nil)
}

// EnsureIndexes implements RegionService.
func (c *Client) EnsureIndexes(req EnsureRequest) error {
	return c.call("EnsureIndexes", req, nil)
}

// Apply implements RegionService.
func (c *Client) Apply(op WriteOp) error {
	return c.call("Apply", op, nil)
}

// GetTuple implements RegionService.
func (c *Client) GetTuple(relation, rowKey string) (*GetResponse, error) {
	var out GetResponse
	if err := c.call("GetTuple", map[string]string{"relation": relation, "row_key": rowKey}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TopK implements RegionService.
func (c *Client) TopK(req QueryRequest) (*ResultData, error) {
	var out ResultData
	if err := c.call("TopK", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MerkleTree implements RegionService.
func (c *Client) MerkleTree(req TreeRequest) (*merkle.Tree, error) {
	var out merkle.Tree
	if err := c.call("MerkleTree", req, &out); err != nil {
		return nil, err
	}
	out.Seal()
	return &out, nil
}

// FetchRange implements RegionService.
func (c *Client) FetchRange(req RangeRequest) (*RangeData, error) {
	var out RangeData
	if err := c.call("FetchRange", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Repair implements RegionService.
func (c *Client) Repair(req RepairRequest) (*RepairStats, error) {
	var out RepairStats
	if err := c.call("Repair", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

var _ RegionService = (*Client)(nil)

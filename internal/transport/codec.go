package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Wire framing: every message is [4-byte big-endian length][JSON
// payload]. Requests and responses share one frame shape; the Seq field
// pairs them on a connection.

// maxFrame bounds one message (64 MiB): a hostile or corrupt length
// prefix fails fast instead of allocating unbounded memory.
const maxFrame = 64 << 20

// request is one wire call.
type request struct {
	Seq    uint64          `json:"seq"`
	Method string          `json:"method"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// response is one wire reply.
type response struct {
	Seq  uint64          `json:"seq"`
	Err  *Error          `json:"err,omitempty"`
	Body json.RawMessage `json:"body,omitempty"`
}

// writeFrame sends one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(blob) > maxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(blob))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// readFrame receives one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("transport: frame length %d exceeds limit", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		return err
	}
	return json.Unmarshal(blob, v)
}

package transport

import (
	"sync/atomic"

	"repro/internal/merkle"
)

// Gate wraps a RegionService with a kill switch: while stopped, every
// call fails with a typed unavailable error, exactly as a crashed or
// partitioned node looks to the router. Node-failure tests flip it
// mid-query; it also backs the loopback topology's StopNode/StartNode.
type Gate struct {
	svc     RegionService
	stopped atomic.Bool
}

// NewGate wraps svc, initially open.
func NewGate(svc RegionService) *Gate { return &Gate{svc: svc} }

// Stop makes every subsequent call fail unavailable.
func (g *Gate) Stop() { g.stopped.Store(true) }

// Start re-opens the gate.
func (g *Gate) Start() { g.stopped.Store(false) }

// Stopped reports the gate state.
func (g *Gate) Stopped() bool { return g.stopped.Load() }

func (g *Gate) check() error {
	if g.stopped.Load() {
		return Unavailable("node stopped")
	}
	return nil
}

// Health implements RegionService.
func (g *Gate) Health() (*HealthInfo, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.Health()
}

// DefineRelation implements RegionService.
func (g *Gate) DefineRelation(name string) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.svc.DefineRelation(name)
}

// EnsureIndexes implements RegionService.
func (g *Gate) EnsureIndexes(req EnsureRequest) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.svc.EnsureIndexes(req)
}

// Apply implements RegionService.
func (g *Gate) Apply(op WriteOp) error {
	if err := g.check(); err != nil {
		return err
	}
	return g.svc.Apply(op)
}

// GetTuple implements RegionService.
func (g *Gate) GetTuple(relation, rowKey string) (*GetResponse, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.GetTuple(relation, rowKey)
}

// TopK implements RegionService.
func (g *Gate) TopK(req QueryRequest) (*ResultData, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.TopK(req)
}

// MerkleTree implements RegionService.
func (g *Gate) MerkleTree(req TreeRequest) (*merkle.Tree, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.MerkleTree(req)
}

// FetchRange implements RegionService.
func (g *Gate) FetchRange(req RangeRequest) (*RangeData, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.FetchRange(req)
}

// Repair implements RegionService.
func (g *Gate) Repair(req RepairRequest) (*RepairStats, error) {
	if err := g.check(); err != nil {
		return nil, err
	}
	return g.svc.Repair(req)
}

// Close implements RegionService.
func (g *Gate) Close() error { return g.svc.Close() }

var _ RegionService = (*Gate)(nil)

package transport

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
)

// Server serves a RegionService over TCP: one goroutine per connection,
// requests on a connection handled sequentially (the router opens one
// connection per node and serializes calls on it, so per-connection
// pipelining buys nothing here).
type Server struct {
	svc RegionService
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool // guarded by: mu
	closed bool              // guarded by: mu
	wg     sync.WaitGroup
}

// Serve starts serving svc on the listener. It returns immediately; use
// Close to stop. The caller owns the service's lifetime.
func Serve(ln net.Listener, svc RegionService) *Server {
	s := &Server{svc: svc, ln: ln, conns: map[net.Conn]bool{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (for :0 test listeners).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, drops open connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			return // disconnect or garbage: drop the connection
		}
		body, derr := dispatch(s.svc, req.Method, req.Body)
		resp := response{Seq: req.Seq}
		if derr != nil {
			resp.Err = asWireError(derr)
		} else if body != nil {
			blob, err := json.Marshal(body)
			if err != nil {
				resp.Err = &Error{Kind: KindInternal, Msg: err.Error()}
			} else {
				resp.Body = blob
			}
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// asWireError converts a service error into the typed wire form,
// preserving an already-typed *Error.
func asWireError(err error) *Error {
	var te *Error
	if errors.As(err, &te) {
		return te
	}
	return &Error{Kind: KindInternal, Msg: err.Error()}
}

// dispatch routes one decoded request to the service method. It is
// shared with tests that exercise the method table without a socket.
func dispatch(svc RegionService, method string, body json.RawMessage) (any, error) {
	switch method {
	case "Health":
		return svc.Health()
	case "DefineRelation":
		var req struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return nil, svc.DefineRelation(req.Name)
	case "EnsureIndexes":
		var req EnsureRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return nil, svc.EnsureIndexes(req)
	case "Apply":
		var op WriteOp
		if err := json.Unmarshal(body, &op); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return nil, svc.Apply(op)
	case "GetTuple":
		var req struct {
			Relation string `json:"relation"`
			RowKey   string `json:"row_key"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return svc.GetTuple(req.Relation, req.RowKey)
	case "TopK":
		var req QueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return svc.TopK(req)
	case "MerkleTree":
		var req TreeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return svc.MerkleTree(req)
	case "FetchRange":
		var req RangeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return svc.FetchRange(req)
	case "Repair":
		var req RepairRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &Error{Kind: KindBadRequest, Msg: err.Error()}
		}
		return svc.Repair(req)
	default:
		return nil, &Error{Kind: KindBadRequest, Msg: "unknown method " + method}
	}
}

// ListenAndServe binds addr and serves svc until Close.
func ListenAndServe(addr string, svc RegionService) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, svc), nil
}

// ioOrUnavailable maps raw socket errors onto the typed unavailable
// error so router failover logic sees one kind.
func ioOrUnavailable(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return Unavailable("connection closed: %v", err)
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return Unavailable("network: %v", err)
	}
	return Unavailable("%v", err)
}

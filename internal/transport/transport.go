// Package transport is the RPC seam between the query/routing layer and
// the region servers that host replicated rank-join data.
//
// RegionService is the region server's whole wire surface: replicated
// writes arrive pre-resolved and pre-stamped (the router reads the
// current tuple at the leader and assigns the group timestamp, so every
// replica applies the byte-identical deterministic mutation), queries
// ship whole to a replica and run against its local engine (the paper's
// design point — rank-join executes inside the store, next to the
// data), and the anti-entropy protocol moves Merkle trees and raw cell
// ranges between replicas.
//
// Two implementations exist: Loopback (in the root package, wrapping a
// node-local DB with zero serialization — the single-process path every
// existing benchmark and test keeps) and the TCP Client/Server pair in
// this package, which speak length-prefixed JSON frames so a topology
// can span real processes (cmd/rjnode). Gate wraps any implementation
// with a kill switch for node-failure tests.
package transport

import (
	"errors"
	"fmt"

	"repro/internal/merkle"
)

// Error kinds, carried across the wire so the router can react without
// string matching.
const (
	// KindUnavailable marks transport-level failures: the node is
	// down, unreachable, or stopped. The router fails over.
	KindUnavailable = "unavailable"
	// KindCorruption marks storage corruption detected while serving
	// (checksum failures, quarantined tables). The router schedules a
	// full resync of the affected table.
	KindCorruption = "corruption"
	// KindBadRequest marks requests the node rejected as malformed;
	// retrying elsewhere will not help.
	KindBadRequest = "bad_request"
	// KindCanceled marks a query that tripped its deadline or context
	// node-side; the bound is the caller's, so no failover.
	KindCanceled = "canceled"
	// KindBudget marks a query that exhausted its MaxReadUnits spend
	// cap node-side; retrying elsewhere would just spend it again.
	KindBudget = "budget_exhausted"
	// KindInternal marks all other node-side failures.
	KindInternal = "internal"
)

// Error is the typed wire error.
type Error struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string { return fmt.Sprintf("transport: %s: %s", e.Kind, e.Msg) }

// ErrUnavailable matches any unavailable-kind Error via errors.Is.
var ErrUnavailable = errors.New("transport: node unavailable")

// Is makes every KindUnavailable error match ErrUnavailable.
func (e *Error) Is(target error) bool {
	return target == ErrUnavailable && e.Kind == KindUnavailable
}

// Unavailable builds a transport-failure error.
func Unavailable(format string, args ...any) *Error {
	return &Error{Kind: KindUnavailable, Msg: fmt.Sprintf(format, args...)}
}

// TupleData is the wire form of one relation tuple.
type TupleData struct {
	RowKey    string  `json:"row_key"`
	JoinValue string  `json:"join_value"`
	Score     float64 `json:"score"`
}

// Write-op kinds.
const (
	OpInsert = "insert"
	OpUpdate = "update"
	OpDelete = "delete"
	OpBatch  = "batch"
)

// WriteOp is one replicated, resolved, pre-stamped mutation. The router
// resolves upserts against the leader (filling Old for updates and
// deletes) and stamps TS once, so applying the op is deterministic:
// every replica derives the identical base + index cell batch, and
// re-applying after a partial failure is idempotent (same timestamps).
type WriteOp struct {
	Relation string      `json:"relation"`
	Kind     string      `json:"kind"`
	Old      *TupleData  `json:"old,omitempty"`
	New      *TupleData  `json:"new,omitempty"`
	Batch    []TupleData `json:"batch,omitempty"`
	TS       int64       `json:"ts"`
}

// CostData is the wire form of a sim.Snapshot: the node-side resources
// one call consumed, folded into the router's collector on return.
type CostData struct {
	SimTimeNanos  int64  `json:"sim_time_nanos"`
	NetworkBytes  uint64 `json:"network_bytes"`
	KVReads       uint64 `json:"kv_reads"`
	KVWrites      uint64 `json:"kv_writes"`
	RPCCalls      uint64 `json:"rpc_calls"`
	DiskBytesRead uint64 `json:"disk_bytes_read"`
	TuplesShipped uint64 `json:"tuples_shipped"`
}

// TreeEdgeData is the wire form of one join-tree edge.
type TreeEdgeData struct {
	A    int     `json:"a"`
	B    int     `json:"b"`
	Kind string  `json:"kind,omitempty"` // "equi" (default) or "band"
	Band float64 `json:"band,omitempty"`
}

// TreeData is the wire form of a join-tree query shape: relations by
// name (each node rebuilds the canonical Relation mapping locally) plus
// the edge predicates. Binary equi-joins keep shipping through the
// legacy Left/Right fields for wire compatibility; TreeData covers
// every other acyclic shape.
type TreeData struct {
	Relations []string       `json:"relations"`
	Edges     []TreeEdgeData `json:"edges"`
}

// QueryRequest ships one top-k (or next-page) execution to a replica.
type QueryRequest struct {
	Left      string `json:"left"`
	Right     string `json:"right"`
	Score     string `json:"score"` // aggregate name: "sum" or "product"
	K         int    `json:"k"`
	Algo      string `json:"algo"`
	Objective string `json:"objective,omitempty"`
	// Tree, when set, describes a general acyclic join-tree query and
	// takes precedence over Left/Right.
	Tree *TreeData `json:"tree,omitempty"`
	// ISLBatch / Parallelism mirror QueryOptions.
	ISLBatch    int    `json:"isl_batch,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	PageToken   string `json:"page_token,omitempty"`
	// TimeoutNanos / MaxReadUnits bound the node-side execution; nanos
	// so a nearly-spent client deadline still trips on arrival instead
	// of rounding away.
	TimeoutNanos int64  `json:"timeout_nanos,omitempty"`
	MaxReadUnits uint64 `json:"max_read_units,omitempty"`
}

// JoinResultData is the wire form of one ranked join result. Tree
// queries over more than two leaves carry the third and later leaves'
// tuples in Rest, in leaf order.
type JoinResultData struct {
	Left  TupleData   `json:"left"`
	Right TupleData   `json:"right"`
	Rest  []TupleData `json:"rest,omitempty"`
	Score float64     `json:"score"`
}

// ResultData is a completed node-side query.
type ResultData struct {
	Results       []JoinResultData `json:"results"`
	Cost          CostData         `json:"cost"`
	Algorithm     string           `json:"algorithm"`
	NextPageToken string           `json:"next_page_token,omitempty"`
}

// EnsureRequest asks a replica to build the named index families for a
// query (each replica builds its own indexes from its replicated base
// data; determinism keeps them byte-identical across replicas).
type EnsureRequest struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	Score string `json:"score"`
	// Tree, when set, names a tree-query shape (takes precedence over
	// Left/Right, like QueryRequest.Tree).
	Tree  *TreeData `json:"tree,omitempty"`
	Algos []string  `json:"algos"`
}

// GetResponse carries a point read's resolution (Tuple nil = absent).
type GetResponse struct {
	Tuple *TupleData `json:"tuple,omitempty"`
}

// HealthInfo is a node's self-report.
type HealthInfo struct {
	Node        string   `json:"node"`
	Relations   []string `json:"relations"`
	Tables      []string `json:"tables"`
	Quarantined []string `json:"quarantined,omitempty"`
	// Clock is the node's logical timestamp high-water mark; the router
	// keeps its group-write stamps above every replica's clock so
	// node-local stamps (index builds, repair tombstones) never shadow
	// replicated cells.
	Clock int64    `json:"clock"`
	Cost  CostData `json:"cost"`
}

// TreeRequest asks for a table's Merkle tree.
type TreeRequest struct {
	Table  string `json:"table"`
	Leaves int    `json:"leaves"`
}

// RangeRequest fetches the raw live cells of the rows whose hash tokens
// fall in the given Merkle leaves — the repair payload source.
type RangeRequest struct {
	Table  string `json:"table"`
	Leaves int    `json:"leaves"`
	// Indexes lists divergent leaf indexes; empty means every row (a
	// full-table fetch for corruption resyncs).
	Indexes []int `json:"indexes,omitempty"`
}

// CellData is the wire form of one raw storage cell.
type CellData struct {
	Row       string `json:"row"`
	Family    string `json:"family"`
	Qualifier string `json:"qualifier"`
	Value     []byte `json:"value,omitempty"`
	Timestamp int64  `json:"ts"`
}

// RangeData is a repair payload: the source replica's live cells in the
// requested leaves plus the distinct row keys present (the target
// deletes its own rows in those leaves that the source lacks).
type RangeData struct {
	Families []string   `json:"families"`
	Rows     []string   `json:"rows"`
	Cells    []CellData `json:"cells"`
}

// RepairRequest applies a repair payload on the target replica.
type RepairRequest struct {
	Table  string `json:"table"`
	Leaves int    `json:"leaves"`
	// Indexes scopes the repair; with Full set the whole table is
	// replaced (corruption resync: drop, recreate, re-ingest).
	Indexes []int     `json:"indexes,omitempty"`
	Full    bool      `json:"full,omitempty"`
	Range   RangeData `json:"range"`
}

// RepairStats reports what a repair application changed.
type RepairStats struct {
	RowsDeleted  int `json:"rows_deleted"`
	CellsApplied int `json:"cells_applied"`
}

// RegionService is the region-server RPC surface. Every method is safe
// for concurrent callers.
type RegionService interface {
	// Health probes liveness and reports the node's served state.
	Health() (*HealthInfo, error)
	// DefineRelation creates (idempotently) a relation's backing table.
	DefineRelation(name string) error
	// EnsureIndexes builds the requested index families node-locally.
	EnsureIndexes(req EnsureRequest) error
	// Apply executes one resolved, pre-stamped replicated write.
	Apply(op WriteOp) error
	// GetTuple resolves a relation row's current tuple (leader reads).
	GetTuple(relation, rowKey string) (*GetResponse, error)
	// TopK runs one query (or next page) against the local engine.
	TopK(req QueryRequest) (*ResultData, error)
	// MerkleTree summarizes a table's live contents for anti-entropy.
	MerkleTree(req TreeRequest) (*merkle.Tree, error)
	// FetchRange extracts a repair payload.
	FetchRange(req RangeRequest) (*RangeData, error)
	// Repair applies a repair payload.
	Repair(req RepairRequest) (*RepairStats, error)
	// Close releases the handle (clients drop connections; loopback
	// closes nothing — the owner closes the DB).
	Close() error
}

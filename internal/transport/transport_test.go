package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/merkle"
)

// fakeService records calls and echoes canned responses.
type fakeService struct {
	mu      sync.Mutex
	applied []WriteOp // guarded by: mu
	failure error     // guarded by: mu
}

func (f *fakeService) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failure = err
}

func (f *fakeService) err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failure
}

func (f *fakeService) Health() (*HealthInfo, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return &HealthInfo{Node: "fake", Relations: []string{"r1"}, Tables: []string{"rel_r1"}}, nil
}

func (f *fakeService) DefineRelation(name string) error { return f.err() }

func (f *fakeService) EnsureIndexes(req EnsureRequest) error { return f.err() }

func (f *fakeService) Apply(op WriteOp) error {
	if err := f.err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied = append(f.applied, op)
	return nil
}

func (f *fakeService) GetTuple(relation, rowKey string) (*GetResponse, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	if rowKey == "missing" {
		return &GetResponse{}, nil
	}
	return &GetResponse{Tuple: &TupleData{RowKey: rowKey, JoinValue: "j", Score: 0.5}}, nil
}

func (f *fakeService) TopK(req QueryRequest) (*ResultData, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	out := &ResultData{Algorithm: req.Algo}
	for i := 0; i < req.K; i++ {
		out.Results = append(out.Results, JoinResultData{
			Left:  TupleData{RowKey: fmt.Sprintf("l%d", i)},
			Right: TupleData{RowKey: fmt.Sprintf("r%d", i)},
			Score: 1 - float64(i)/10,
		})
	}
	return out, nil
}

func (f *fakeService) MerkleTree(req TreeRequest) (*merkle.Tree, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	b := merkle.NewBuilder(req.Leaves)
	b.Add("row1", merkle.HashRow("row1", []byte("v")))
	return b.Build(), nil
}

func (f *fakeService) FetchRange(req RangeRequest) (*RangeData, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return &RangeData{
		Families: []string{"d"},
		Rows:     []string{"row1"},
		Cells:    []CellData{{Row: "row1", Family: "d", Qualifier: "q", Value: []byte("v"), Timestamp: 7}},
	}, nil
}

func (f *fakeService) Repair(req RepairRequest) (*RepairStats, error) {
	if err := f.err(); err != nil {
		return nil, err
	}
	return &RepairStats{CellsApplied: len(req.Range.Cells)}, nil
}

func (f *fakeService) Close() error { return nil }

func startServer(t *testing.T, svc RegionService) (*Server, *Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, svc)
	t.Cleanup(func() { _ = srv.Close() })
	cl := Dial(srv.Addr())
	t.Cleanup(func() { _ = cl.Close() })
	return srv, cl
}

func TestTCPRoundTrip(t *testing.T) {
	fake := &fakeService{}
	_, cl := startServer(t, fake)

	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Node != "fake" || len(h.Relations) != 1 {
		t.Fatalf("health = %+v", h)
	}

	op := WriteOp{Relation: "r1", Kind: OpInsert, New: &TupleData{RowKey: "k", JoinValue: "j", Score: 0.25}, TS: 42}
	if err := cl.Apply(op); err != nil {
		t.Fatal(err)
	}
	fake.mu.Lock()
	got := fake.applied[0]
	fake.mu.Unlock()
	if got.TS != 42 || got.New.Score != 0.25 || got.Kind != OpInsert {
		t.Fatalf("applied op = %+v", got)
	}

	res, err := cl.TopK(QueryRequest{Left: "a", Right: "b", Score: "sum", K: 3, Algo: "isl"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 || res.Algorithm != "isl" {
		t.Fatalf("topk = %+v", res)
	}

	tree, err := cl.MerkleTree(TreeRequest{Table: "rel_r1", Leaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fake.MerkleTree(TreeRequest{Leaves: 16})
	if tree.Root() != want.Root() {
		t.Fatal("merkle tree changed across the wire")
	}

	rng, err := cl.FetchRange(RangeRequest{Table: "rel_r1", Leaves: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rng.Cells) != 1 || !bytes.Equal(rng.Cells[0].Value, []byte("v")) || rng.Cells[0].Timestamp != 7 {
		t.Fatalf("range = %+v", rng)
	}

	st, err := cl.Repair(RepairRequest{Table: "rel_r1", Leaves: 16, Range: *rng})
	if err != nil || st.CellsApplied != 1 {
		t.Fatalf("repair = %+v, %v", st, err)
	}

	g, err := cl.GetTuple("r1", "missing")
	if err != nil || g.Tuple != nil {
		t.Fatalf("GetTuple(missing) = %+v, %v", g, err)
	}
}

func TestTypedErrorCrossesWire(t *testing.T) {
	fake := &fakeService{}
	fake.fail(&Error{Kind: KindCorruption, Msg: "checksum failed"})
	_, cl := startServer(t, fake)

	_, err := cl.TopK(QueryRequest{K: 1})
	var te *Error
	if !errors.As(err, &te) || te.Kind != KindCorruption {
		t.Fatalf("err = %v, want corruption-kind *Error", err)
	}
}

func TestServerDownIsUnavailable(t *testing.T) {
	fake := &fakeService{}
	srv, cl := startServer(t, fake)
	if _, err := cl.Health(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	_, err := cl.Health()
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}

func TestClientRedialsAfterRestart(t *testing.T) {
	fake := &fakeService{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := Serve(ln, fake)
	cl := Dial(addr)
	defer cl.Close()
	if _, err := cl.Health(); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	// Restart on the same port; the client's next call should redial.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	srv2 := Serve(ln2, fake)
	defer srv2.Close()
	if _, err := cl.Health(); err != nil {
		t.Fatalf("call after server restart = %v", err)
	}
}

func TestGateStopsAndResumes(t *testing.T) {
	fake := &fakeService{}
	g := NewGate(fake)
	if _, err := g.Health(); err != nil {
		t.Fatal(err)
	}
	g.Stop()
	if _, err := g.Health(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stopped gate err = %v, want ErrUnavailable", err)
	}
	if err := g.Apply(WriteOp{}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("stopped gate apply = %v", err)
	}
	g.Start()
	if _, err := g.Health(); err != nil {
		t.Fatalf("restarted gate err = %v", err)
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	// A hostile 4 GiB length prefix must fail fast, not allocate.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	var v request
	if err := readFrame(&buf, &v); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

package rankjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Multi-way rank joins (the Section 3 generalization): n relations
// equi-joined on a common attribute, ranked by an n-ary monotonic
// aggregate. A MultiQuery is the star-shaped special case of the
// general JoinTree query model (NewTreeQuery): every relation shares
// one join attribute, which is exactly a tree whose equi-edges all
// meet at leaf 0. Supported algorithms: AlgoNaive, AlgoISL (the
// coordinator-based HRJN generalization), AlgoAnyK (the streaming tree
// executor), and AlgoAuto.

// N-ary re-exports.
type (
	// NScoreFunc is a monotonic aggregate over n tuple scores.
	NScoreFunc = core.NScoreFunc
	// NJoinResult is one n-way join result.
	NJoinResult = core.NJoinResult
	// NResult is an executed multi-way query.
	NResult = core.NResult
)

// N-ary score aggregates.
var (
	// SumN adds all n scores.
	SumN = core.SumN
	// ProductN multiplies all n scores.
	ProductN = core.ProductN
)

// MultiQuery is an n-way top-k equi-join over defined relations.
type MultiQuery struct {
	t *core.JoinTree
}

// NewMultiQuery builds an n-way query over previously defined relations.
func (db *DB) NewMultiQuery(relations []string, f NScoreFunc, k int) (MultiQuery, error) {
	var rels []core.Relation
	db.mu.Lock()
	for _, name := range relations {
		h, ok := db.relations[name]
		if !ok {
			db.mu.Unlock()
			return MultiQuery{}, fmt.Errorf("rankjoin: relation %q not defined", name)
		}
		rels = append(rels, h.rel)
	}
	db.mu.Unlock()
	q := core.MultiQuery{Relations: rels, Score: f, K: k}
	if err := q.Validate(); err != nil {
		return MultiQuery{}, err
	}
	return MultiQuery{t: core.TreeFromMulti(q)}, nil
}

// WithK derives a query with a different k (indexes are shared).
func (q MultiQuery) WithK(k int) MultiQuery {
	nt := *q.t
	nt.K = k
	return MultiQuery{t: &nt}
}

// ID returns the query's deterministic identifier.
func (q MultiQuery) ID() string { return q.t.ID() }

// Tree converts to the general tree-query form, so every Query entry
// point (TopK, Stream, Explain, page tokens) works on a MultiQuery.
func (q MultiQuery) Tree() Query { return Query{t: q.t} }

// EnsureMultiIndexes builds the n-way ISL index for the query
// (idempotent; shared by AlgoISL and AlgoAnyK, and by every tree query
// over the same relations and score).
func (db *DB) EnsureMultiIndexes(q MultiQuery) error {
	if err := core.EnsureISLN(db.cluster, q.t, db.store); err != nil {
		return err
	}
	return db.saveCatalog()
}

// nresultOf converts a tree-query result to the n-ary form.
func nresultOf(res *Result) *NResult {
	out := &NResult{Results: make([]NJoinResult, 0, len(res.Results)), Cost: res.Cost}
	for _, r := range res.Results {
		tuples := make([]Tuple, 0, 2+len(r.Rest))
		tuples = append(tuples, r.Left, r.Right)
		tuples = append(tuples, r.Rest...)
		out.Results = append(out.Results, NJoinResult{Tuples: tuples, Score: r.Score})
	}
	return out
}

// TopKN executes the n-way query. AlgoNaive needs no index; AlgoISL and
// AlgoAnyK require a prior EnsureMultiIndexes call. Like TopK, it meters
// a private per-query collector, so concurrent callers get isolated
// costs. It dispatches through the same tree-query path as TopK, so
// AlgoAuto plans n-way queries too.
func (db *DB) TopKN(q MultiQuery, algo Algorithm, opts *QueryOptions) (*NResult, error) {
	res, err := db.TopK(q.Tree(), algo, opts)
	if err != nil {
		return nil, err
	}
	return nresultOf(res), nil
}

// NRows streams an n-way query's results in descending score order: the
// n-ary view over DB.Stream's Rows. With AlgoAnyK (or AlgoAuto picking
// it) the enumeration is native — each result pays marginal work; batch
// shaped executors (AlgoNaive, AlgoISL) materialize deepening re-runs
// behind the same interface.
type NRows struct {
	rows *Rows
	res  NJoinResult
}

// StreamN starts a streaming n-way execution.
func (db *DB) StreamN(q MultiQuery, algo Algorithm, opts *QueryOptions) (*NRows, error) {
	rows, err := db.Stream(q.Tree(), algo, opts)
	if err != nil {
		return nil, err
	}
	return &NRows{rows: rows}, nil
}

// Next advances to the next result, reporting false at exhaustion or
// error.
func (r *NRows) Next() bool {
	if !r.rows.Next() {
		return false
	}
	jr := r.rows.Result()
	tuples := make([]Tuple, 0, 2+len(jr.Rest))
	tuples = append(tuples, jr.Left, jr.Right)
	tuples = append(tuples, jr.Rest...)
	r.res = NJoinResult{Tuples: tuples, Score: jr.Score}
	return true
}

// Result returns the row Next advanced to.
func (r *NRows) Result() NJoinResult { return r.res }

// Err returns the first error the stream hit, if any.
func (r *NRows) Err() error { return r.rows.Err() }

// Cost reports the cumulative resources the stream consumed.
func (r *NRows) Cost() sim.Snapshot { return r.rows.Cost() }

// Close releases the stream.
func (r *NRows) Close() error { return r.rows.Close() }

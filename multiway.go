package rankjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Multi-way rank joins (the Section 3 generalization): n relations
// equi-joined on a common attribute, ranked by an n-ary monotonic
// aggregate. Supported algorithms: AlgoNaive and AlgoISL (the
// coordinator-based HRJN generalization).

// N-ary re-exports.
type (
	// NScoreFunc is a monotonic aggregate over n tuple scores.
	NScoreFunc = core.NScoreFunc
	// NJoinResult is one n-way join result.
	NJoinResult = core.NJoinResult
	// NResult is an executed multi-way query.
	NResult = core.NResult
)

// N-ary score aggregates.
var (
	// SumN adds all n scores.
	SumN = core.SumN
	// ProductN multiplies all n scores.
	ProductN = core.ProductN
)

// MultiQuery is an n-way top-k equi-join over defined relations.
type MultiQuery struct {
	q core.MultiQuery
}

// NewMultiQuery builds an n-way query over previously defined relations.
func (db *DB) NewMultiQuery(relations []string, f NScoreFunc, k int) (MultiQuery, error) {
	var rels []core.Relation
	db.mu.Lock()
	for _, name := range relations {
		h, ok := db.relations[name]
		if !ok {
			db.mu.Unlock()
			return MultiQuery{}, fmt.Errorf("rankjoin: relation %q not defined", name)
		}
		rels = append(rels, h.rel)
	}
	db.mu.Unlock()
	q := core.MultiQuery{Relations: rels, Score: f, K: k}
	if err := q.Validate(); err != nil {
		return MultiQuery{}, err
	}
	return MultiQuery{q: q}, nil
}

// WithK derives a query with a different k.
func (q MultiQuery) WithK(k int) MultiQuery {
	out := q
	out.q.K = k
	return out
}

// ID returns the query's deterministic identifier.
func (q MultiQuery) ID() string { return q.q.ID() }

// EnsureMultiIndexes builds the n-way ISL index for the query
// (idempotent).
func (db *DB) EnsureMultiIndexes(q MultiQuery) error {
	db.mu.Lock()
	_, ok := db.isln[q.ID()]
	db.mu.Unlock()
	if ok {
		return nil
	}
	idx, _, err := core.BuildISLN(db.cluster, q.q)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.isln[q.ID()] = idx
	db.mu.Unlock()
	return db.saveCatalog()
}

// TopKN executes the n-way query. AlgoNaive needs no index; AlgoISL
// requires a prior EnsureMultiIndexes call. Like TopK, it meters a
// private per-query collector, so concurrent callers get isolated costs.
func (db *DB) TopKN(q MultiQuery, algo Algorithm, opts *QueryOptions) (*NResult, error) {
	qm := sim.NewLane(db.cluster.Metrics())
	qc := db.cluster.WithMetrics(qm)
	res, err := db.topKNOn(qc, q, algo, opts)
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	db.cluster.Metrics().Advance(res.Cost.SimTime)
	return res, nil
}

// NRows streams an n-way query's results in descending score order.
// Multi-way execution is batch-shaped (the n-ary coordinator targets a
// fixed k), so the stream materializes pages through the same doubling
// core.Pager schedule batch-shaped two-way executors use: it runs
// TopKN at the query's k and transparently re-runs at doubled depths
// when drained deeper.
type NRows struct {
	pager  *core.Pager[NJoinResult]
	cost   sim.Snapshot
	closed bool
	res    NJoinResult
	err    error
}

// StreamN starts a streaming n-way execution (AlgoNaive or AlgoISL,
// like TopKN).
func (db *DB) StreamN(q MultiQuery, algo Algorithm, opts *QueryOptions) (*NRows, error) {
	// Validate the algorithm up front with a zero-cost dispatch check.
	switch algo {
	case AlgoNaive, AlgoISL:
	default:
		return nil, fmt.Errorf("rankjoin: algorithm %q does not support multi-way joins (use %s or %s)",
			algo, AlgoNaive, AlgoISL)
	}
	rows := &NRows{}
	rows.pager = core.NewPager(q.q.K, func(k int) ([]NJoinResult, error) {
		res, err := db.TopKN(q.WithK(k), algo, opts)
		if err != nil {
			return nil, err
		}
		rows.cost = rows.cost.Add(res.Cost)
		return res.Results, nil
	})
	return rows, nil
}

// Next advances to the next result, reporting false at exhaustion or
// error.
func (r *NRows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	res, err := r.pager.Next()
	if err != nil {
		r.err = err
		return false
	}
	if res == nil {
		return false
	}
	r.res = *res
	return true
}

// Result returns the row Next advanced to.
func (r *NRows) Result() NJoinResult { return r.res }

// Err returns the first error the stream hit, if any.
func (r *NRows) Err() error { return r.err }

// Cost reports the cumulative resources the stream's runs consumed.
func (r *NRows) Cost() sim.Snapshot { return r.cost }

// Close releases the stream.
func (r *NRows) Close() error {
	r.closed = true
	r.pager.Release()
	return nil
}

func (db *DB) topKNOn(c *kvstore.Cluster, q MultiQuery, algo Algorithm, opts *QueryOptions) (*NResult, error) {
	switch algo {
	case AlgoNaive:
		return core.NaiveTopKN(c, q.q)
	case AlgoISL:
		db.mu.Lock()
		idx, ok := db.isln[q.ID()]
		db.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rankjoin: no n-way ISL index for %s; call EnsureMultiIndexes first", q.ID())
		}
		batch := 100
		if opts != nil && opts.ISLBatch > 0 {
			batch = opts.ISLBatch
		}
		return core.QueryISLN(c, q.q, idx, batch)
	default:
		return nil, fmt.Errorf("rankjoin: algorithm %q does not support multi-way joins (use %s or %s)",
			algo, AlgoNaive, AlgoISL)
	}
}

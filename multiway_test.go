package rankjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestPublicMultiWayJoin(t *testing.T) {
	db := mustOpen(t, Config{})
	rng := rand.New(rand.NewSource(5))
	var data [][]Tuple
	for i := 0; i < 3; i++ {
		var ts []Tuple
		for j := 0; j < 100; j++ {
			ts = append(ts, Tuple{
				RowKey:    fmt.Sprintf("r%d_%03d", i, j),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(12)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		data = append(data, ts)
		h, err := db.DefineRelation(fmt.Sprintf("day%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.BulkLoad(ts); err != nil {
			t.Fatal(err)
		}
	}
	q, err := db.NewMultiQuery([]string{"day0", "day1", "day2"}, SumN, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureMultiIndexes(q); err != nil {
		t.Fatal(err)
	}

	// Reference: brute force over the in-memory data.
	var ref []float64
	for _, a := range data[0] {
		for _, b := range data[1] {
			if b.JoinValue != a.JoinValue {
				continue
			}
			for _, c := range data[2] {
				if c.JoinValue == a.JoinValue {
					ref = append(ref, a.Score+b.Score+c.Score)
				}
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ref)))
	if len(ref) > 8 {
		ref = ref[:8]
	}

	for _, algo := range []Algorithm{AlgoNaive, AlgoISL} {
		res, err := db.TopKN(q, algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Results) != len(ref) {
			t.Fatalf("%s: %d results, want %d", algo, len(res.Results), len(ref))
		}
		for i, r := range res.Results {
			if d := r.Score - ref[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s: score[%d] = %f, want %f", algo, i, r.Score, ref[i])
			}
			if len(r.Tuples) != 3 {
				t.Fatalf("%s: result arity %d", algo, len(r.Tuples))
			}
		}
	}

	// Unsupported algorithm errors cleanly.
	if _, err := db.TopKN(q, AlgoBFHM, nil); err == nil {
		t.Error("BFHM multi-way accepted (unsupported)")
	}
	// Missing relation errors cleanly.
	if _, err := db.NewMultiQuery([]string{"day0", "nope"}, SumN, 3); err == nil {
		t.Error("undefined relation accepted")
	}
	// WithK.
	res, err := db.TopKN(q.WithK(2), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("WithK(2) returned %d", len(res.Results))
	}
}

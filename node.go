package rankjoin

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/kvstore"
	"repro/internal/merkle"
	"repro/internal/sim"
	"repro/internal/transport"
)

// NodeService adapts one node-local DB to the transport.RegionService
// seam. A region server hosts the FULL engine — base tables, index
// tables, and all seven executors — and the seam ships work to it at
// node granularity: resolved pre-stamped writes to apply, whole top-k
// queries to execute next to the data (the paper's design point), and
// anti-entropy tree/range/repair traffic. cmd/rjnode serves one of
// these over TCP; the loopback topology calls it in-process.
//
// NodeService itself holds no mutable state: every field is set at
// construction, and concurrency control lives in the DB underneath
// (writeMu per relation, cluster-internal locks), so all methods are
// safe for concurrent callers.
type NodeService struct {
	name string
	db   *DB
}

// NewNodeService wraps a DB as a region service named name. The caller
// keeps ownership of the DB and closes it after the service retires.
func NewNodeService(name string, db *DB) *NodeService {
	return &NodeService{name: name, db: db}
}

// DB exposes the node-local engine (tests inspect replica state
// directly through it).
func (n *NodeService) DB() *DB { return n.db }

// wireCost converts a metrics snapshot to its wire form.
func wireCost(s sim.Snapshot) transport.CostData {
	return transport.CostData{
		SimTimeNanos:  s.SimTime.Nanoseconds(),
		NetworkBytes:  s.NetworkBytes,
		KVReads:       s.KVReads,
		KVWrites:      s.KVWrites,
		RPCCalls:      s.RPCCalls,
		DiskBytesRead: s.DiskBytesRead,
		TuplesShipped: s.TuplesShipped,
	}
}

// CostSnapshot converts a wire cost back to a metrics snapshot (the
// router folds node-side work into its own collector with it).
func CostSnapshot(c transport.CostData) sim.Snapshot {
	return sim.Snapshot{
		SimTime:       time.Duration(c.SimTimeNanos),
		NetworkBytes:  c.NetworkBytes,
		KVReads:       c.KVReads,
		KVWrites:      c.KVWrites,
		RPCCalls:      c.RPCCalls,
		DiskBytesRead: c.DiskBytesRead,
		TuplesShipped: c.TuplesShipped,
	}
}

// scoreByName resolves a wire score-aggregate name. Queries cross the
// seam by name because ScoreFunc carries a Go function value.
func scoreByName(name string) (ScoreFunc, error) {
	switch name {
	case Sum.Name:
		return Sum, nil
	case Product.Name:
		return Product, nil
	default:
		return ScoreFunc{}, &transport.Error{Kind: transport.KindBadRequest,
			Msg: fmt.Sprintf("unknown score aggregate %q", name)}
	}
}

// nScoreByName resolves a wire score-aggregate name to its n-ary form
// (tree queries aggregate over every leaf).
func nScoreByName(name string) (NScoreFunc, error) {
	switch name {
	case SumN.Name:
		return SumN, nil
	case ProductN.Name:
		return ProductN, nil
	default:
		return NScoreFunc{}, &transport.Error{Kind: transport.KindBadRequest,
			Msg: fmt.Sprintf("unknown score aggregate %q", name)}
	}
}

// treeEdgesOf converts wire edges to the public edge form. Unknown
// kinds pass through and fail tree validation with a typed ShapeError.
func treeEdgesOf(wire []transport.TreeEdgeData) []TreeEdge {
	edges := make([]TreeEdge, len(wire))
	for i, e := range wire {
		edges[i] = TreeEdge{A: e.A, B: e.B, Kind: PredKind(e.Kind), Band: e.Band}
	}
	return edges
}

// queryFromWire rebuilds the query a request describes: the Tree shape
// when present, the legacy two-way Left/Right fields otherwise.
func (n *NodeService) queryFromWire(tree *transport.TreeData, left, right, score string, k int) (Query, error) {
	if tree != nil {
		f, err := nScoreByName(score)
		if err != nil {
			return Query{}, err
		}
		q, err := n.db.NewTreeQuery(tree.Relations, treeEdgesOf(tree.Edges), f, k)
		if err != nil {
			return Query{}, badRequest("%v", err)
		}
		return q, nil
	}
	f, err := scoreByName(score)
	if err != nil {
		return Query{}, err
	}
	q, err := n.db.NewQuery(left, right, f, k)
	if err != nil {
		return Query{}, badRequest("%v", err)
	}
	return q, nil
}

// wrapNodeErr types a node-side failure for the wire: corruption keeps
// its kind (the router schedules a resync), a local disk I/O failure
// makes this replica unavailable for the request (the router fails over
// to a replica whose disk works — retrying here cannot help, kvstore
// already exhausted its read retries), already-typed errors pass
// through, everything else is internal.
func wrapNodeErr(err error) error {
	if err == nil {
		return nil
	}
	var te *transport.Error
	if errors.As(err, &te) {
		return te
	}
	if errors.Is(err, ErrCorruption) {
		return &transport.Error{Kind: transport.KindCorruption, Msg: err.Error()}
	}
	var ioe *kvstore.IOError
	if errors.As(err, &ioe) {
		return &transport.Error{Kind: transport.KindUnavailable, Msg: err.Error()}
	}
	// Tripped query bounds keep their kind so the router front-end can
	// answer 408/507 instead of 500. The partial results a typed
	// CanceledError/BudgetExceededError carries do not cross the seam —
	// only the classification does.
	var ce *CanceledError
	if errors.As(err, &ce) {
		return &transport.Error{Kind: transport.KindCanceled, Msg: err.Error()}
	}
	var be *BudgetExceededError
	if errors.As(err, &be) {
		return &transport.Error{Kind: transport.KindBudget, Msg: err.Error()}
	}
	return &transport.Error{Kind: transport.KindInternal, Msg: err.Error()}
}

func badRequest(format string, args ...any) *transport.Error {
	return &transport.Error{Kind: transport.KindBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// Health implements transport.RegionService.
func (n *NodeService) Health() (*transport.HealthInfo, error) {
	return &transport.HealthInfo{
		Node:        n.name,
		Relations:   n.db.RelationNames(),
		Tables:      n.db.cluster.TableNames(),
		Quarantined: n.db.cluster.Quarantined(),
		Clock:       n.db.cluster.Clock(),
		Cost:        wireCost(n.db.Metrics().Snapshot()),
	}, nil
}

// DefineRelation implements transport.RegionService. Unlike
// DB.DefineRelation it is idempotent: replicated definitions re-arrive
// on retries and topology changes.
func (n *NodeService) DefineRelation(name string) error {
	if n.db.Relation(name) != nil {
		return nil
	}
	if _, err := n.db.DefineRelation(name); err != nil {
		return wrapNodeErr(err)
	}
	return nil
}

// EnsureIndexes implements transport.RegionService: each replica builds
// its own index tables from its replicated base data. Builds are
// deterministic given identical base tables, so replicas converge on
// byte-identical index tables too.
func (n *NodeService) EnsureIndexes(req transport.EnsureRequest) error {
	q, err := n.queryFromWire(req.Tree, req.Left, req.Right, req.Score, 1)
	if err != nil {
		return err
	}
	algos := make([]Algorithm, len(req.Algos))
	for i, a := range req.Algos {
		algos[i] = Algorithm(a)
	}
	return wrapNodeErr(n.db.EnsureIndexes(q, algos...))
}

func tupleOf(t *transport.TupleData) Tuple {
	if t == nil {
		return Tuple{}
	}
	return Tuple{RowKey: t.RowKey, JoinValue: t.JoinValue, Score: t.Score}
}

// TupleData converts a tuple to its wire form.
func TupleData(t Tuple) *transport.TupleData {
	return &transport.TupleData{RowKey: t.RowKey, JoinValue: t.JoinValue, Score: t.Score}
}

// Apply implements transport.RegionService: one resolved, pre-stamped
// write, applied with full index maintenance at the carried timestamp.
// The router resolved the upsert (op.Kind already says insert vs
// update, with Old filled in) and stamped TS once for the whole replica
// group, so this application is deterministic and idempotent — the
// replica's base AND index tables end up byte-identical to its peers'.
func (n *NodeService) Apply(op transport.WriteOp) error {
	h := n.db.Relation(op.Relation)
	if h == nil {
		return badRequest("relation %q not defined on node %s", op.Relation, n.name)
	}
	// Advance the local clock past the router's stamp FIRST: any later
	// locally-stamped write (repair tombstones, a failover leader's next
	// resolution) must sort above this op's cells.
	n.db.cluster.ObserveClock(op.TS)
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	m := h.maintainer()
	switch op.Kind {
	case transport.OpInsert:
		return wrapNodeErr(m.InsertTupleAt(tupleOf(op.New), op.TS))
	case transport.OpUpdate:
		return wrapNodeErr(m.UpdateTupleAt(tupleOf(op.Old), tupleOf(op.New), op.TS))
	case transport.OpDelete:
		return wrapNodeErr(m.DeleteTupleAt(tupleOf(op.Old), op.TS))
	case transport.OpBatch:
		tuples := make([]Tuple, len(op.Batch))
		for i := range op.Batch {
			tuples[i] = tupleOf(&op.Batch[i])
		}
		return wrapNodeErr(m.InsertBatchAt(tuples, op.TS))
	default:
		return badRequest("unknown write-op kind %q", op.Kind)
	}
}

// GetTuple implements transport.RegionService (the router's resolution
// read before an upsert or delete).
func (n *NodeService) GetTuple(relation, rowKey string) (*transport.GetResponse, error) {
	h := n.db.Relation(relation)
	if h == nil {
		return nil, badRequest("relation %q not defined on node %s", relation, n.name)
	}
	t, ok, err := h.Get(rowKey)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	if !ok {
		return &transport.GetResponse{}, nil
	}
	return &transport.GetResponse{Tuple: TupleData(t)}, nil
}

// TopK implements transport.RegionService: the whole query runs against
// this node's local engine and only the ranked results (plus the cost
// actually consumed) cross the wire back.
func (n *NodeService) TopK(req transport.QueryRequest) (*transport.ResultData, error) {
	q, err := n.queryFromWire(req.Tree, req.Left, req.Right, req.Score, req.K)
	if err != nil {
		return nil, err
	}
	opts := &QueryOptions{
		ISLBatch:     req.ISLBatch,
		Parallelism:  req.Parallelism,
		Objective:    Objective(req.Objective),
		PageToken:    req.PageToken,
		MaxReadUnits: req.MaxReadUnits,
	}
	if req.TimeoutNanos > 0 {
		opts.Deadline = time.Now().Add(time.Duration(req.TimeoutNanos))
	}
	algo := Algorithm(req.Algo)
	if algo == "" {
		algo = AlgoAuto
	}
	res, err := n.db.TopK(q, algo, opts)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	out := &transport.ResultData{
		Cost:          wireCost(res.Cost),
		Algorithm:     res.Algorithm,
		NextPageToken: res.NextPageToken,
	}
	for _, r := range res.Results {
		jr := transport.JoinResultData{
			Left:  *TupleData(r.Left),
			Right: *TupleData(r.Right),
			Score: r.Score,
		}
		for _, t := range r.Rest {
			jr.Rest = append(jr.Rest, *TupleData(t))
		}
		out.Results = append(out.Results, jr)
	}
	return out, nil
}

// groupRows splits a table snapshot into per-row cell runs, preserving
// each row's storage order (the digest part order) and returning the
// row keys sorted.
func groupRows(cells []kvstore.Cell) ([]string, map[string][]kvstore.Cell) {
	byRow := map[string][]kvstore.Cell{}
	var rows []string
	for i := range cells {
		if _, ok := byRow[cells[i].Row]; !ok {
			rows = append(rows, cells[i].Row)
		}
		byRow[cells[i].Row] = append(byRow[cells[i].Row], cells[i])
	}
	sort.Strings(rows)
	return rows, byRow
}

// MerkleTree implements transport.RegionService. A table this replica
// never saw summarizes as an all-empty tree — every populated source
// leaf then diverges, and the repair recreates the table — so "missing"
// needs no special protocol case. A corrupt table fails typed instead
// (this replica cannot honestly summarize state it cannot read), which
// the router answers with a full resync.
func (n *NodeService) MerkleTree(req transport.TreeRequest) (*merkle.Tree, error) {
	b := merkle.NewBuilder(req.Leaves)
	if !n.db.cluster.HasTable(req.Table) {
		return b.Build(), nil
	}
	cells, err := n.db.cluster.TableCells(req.Table)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	rows, byRow := groupRows(cells)
	for _, row := range rows {
		b.Add(row, merkle.HashRow(row, kvstore.RowDigestParts(byRow[row])...))
	}
	n.db.cluster.ChargeMerkleScan(kvstore.MerkleScanStats{Rows: len(rows), Cells: len(cells)})
	return b.Build(), nil
}

// FetchRange implements transport.RegionService: the repair-payload
// read on the source replica. With leaf indexes it ships only the rows
// whose hash tokens fall in those leaves; without, the whole table
// (full-resync source).
func (n *NodeService) FetchRange(req transport.RangeRequest) (*transport.RangeData, error) {
	if !n.db.cluster.HasTable(req.Table) {
		return nil, badRequest("node %s has no table %q to fetch from", n.name, req.Table)
	}
	families, err := n.db.cluster.TableFamilies(req.Table)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	cells, err := n.db.cluster.TableCells(req.Table)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	leaves := merkle.NormalizeLeaves(req.Leaves)
	var want map[int]bool
	if len(req.Indexes) > 0 {
		want = make(map[int]bool, len(req.Indexes))
		for _, i := range req.Indexes {
			want[i] = true
		}
	}
	out := &transport.RangeData{Families: families}
	rows, byRow := groupRows(cells)
	for _, row := range rows {
		if want != nil && !want[merkle.LeafIndex(leaves, row)] {
			continue
		}
		out.Rows = append(out.Rows, row)
		for _, c := range byRow[row] {
			out.Cells = append(out.Cells, transport.CellData{
				Row: c.Row, Family: c.Family, Qualifier: c.Qualifier,
				Value: c.Value, Timestamp: c.Timestamp,
			})
		}
	}
	return out, nil
}

// Repair implements transport.RegionService: apply a source replica's
// payload locally. Full repairs replace the table wholesale; scoped
// repairs overwrite the shipped rows at their original timestamps and
// delete this replica's own rows in the divergent leaves that the
// source lacks (tombstoned at a fresh local timestamp — invisible to
// the digest, so trees still converge).
func (n *NodeService) Repair(req transport.RepairRequest) (*transport.RepairStats, error) {
	cells := make([]kvstore.Cell, len(req.Range.Cells))
	for i, c := range req.Range.Cells {
		cells[i] = kvstore.Cell{Row: c.Row, Family: c.Family, Qualifier: c.Qualifier,
			Value: c.Value, Timestamp: c.Timestamp}
	}
	if req.Full {
		applied, err := n.db.cluster.RepairReplace(req.Table, req.Range.Families, cells)
		if err != nil {
			return nil, wrapNodeErr(err)
		}
		return &transport.RepairStats{CellsApplied: applied}, nil
	}
	deleteRows, err := n.staleRows(req)
	if err != nil {
		return nil, err
	}
	deleted, applied, err := n.db.cluster.RepairApply(req.Table, req.Range.Families, cells, deleteRows)
	if err != nil {
		return nil, wrapNodeErr(err)
	}
	return &transport.RepairStats{RowsDeleted: deleted, CellsApplied: applied}, nil
}

// staleRows lists this replica's own rows inside the repair's divergent
// leaves that the source payload does not carry — rows the source
// deleted (or never had) that must go.
func (n *NodeService) staleRows(req transport.RepairRequest) ([]string, error) {
	if !n.db.cluster.HasTable(req.Table) {
		return nil, nil
	}
	local, err := n.db.cluster.TableCells(req.Table)
	if err != nil {
		// Cannot enumerate local rows (likely corruption): fail typed so
		// the router escalates to a full resync.
		return nil, wrapNodeErr(err)
	}
	srcRows := make(map[string]bool, len(req.Range.Rows))
	for _, r := range req.Range.Rows {
		srcRows[r] = true
	}
	leaves := merkle.NormalizeLeaves(req.Leaves)
	var want map[int]bool
	if len(req.Indexes) > 0 {
		want = make(map[int]bool, len(req.Indexes))
		for _, i := range req.Indexes {
			want[i] = true
		}
	}
	rows, _ := groupRows(local)
	var stale []string
	for _, row := range rows {
		if want != nil && !want[merkle.LeafIndex(leaves, row)] {
			continue
		}
		if !srcRows[row] {
			stale = append(stale, row)
		}
	}
	return stale, nil
}

// Close implements transport.RegionService. The DB's owner closes it.
func (n *NodeService) Close() error { return nil }

var _ transport.RegionService = (*NodeService)(nil)

// Node-failure degradation tests: reads keep serving from surviving
// replicas when a node dies mid-query, writes fail typed when the
// quorum is lost, and a revived node is quarantined from leader duty
// until anti-entropy re-converges it.
package rankjoin

import (
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestStreamSurvivesNodeLoss kills the replica serving a stream between
// pages; the page-pulling failover path fast-forwards on a survivor and
// the client sees the uninterrupted, exact result sequence.
func TestStreamSurvivesNodeLoss(t *testing.T) {
	left, right := distTuples(300)
	db, q := oracleDB(t, left, right)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	const total = 20
	want, err := db.TopK(q.WithK(total), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Results) < total {
		t.Fatalf("oracle produced %d results, need %d", len(want.Results), total)
	}

	rows, err := d.Stream(dq.WithK(5), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	var got []JoinResult
	killed := false
	for len(got) < total {
		if !rows.Next() {
			break
		}
		got = append(got, rows.Result())
		if len(got) == 3 && !killed {
			// The stream's continuation token names the node holding the
			// cursor; kill exactly that node mid-stream.
			serving, _, _, perr := parseDistToken(rows.token)
			if perr != nil {
				t.Fatal(perr)
			}
			if err := d.StopNode(serving); err != nil {
				t.Fatal(err)
			}
			killed = true
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("stream failed after node loss: %v", err)
	}
	if !killed {
		t.Fatal("stream ended before the kill point")
	}
	assertSameResults(t, "streamed across node loss", got, want.Results[:len(got)])
}

// TestAllReplicasDownTyped: queries and reads fail with the typed
// NoReplicaError (unwrapping to transport.ErrUnavailable) only when
// every replica is gone.
func TestAllReplicasDownTyped(t *testing.T) {
	left, right := distTuples(80)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	// Two of three down: still serving.
	for _, n := range []string{"node0", "node1"} {
		if err := d.StopNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.TopK(dq, AlgoNaive, nil); err != nil {
		t.Fatalf("one live replica should serve reads, got %v", err)
	}

	if err := d.StopNode("node2"); err != nil {
		t.Fatal(err)
	}
	_, err := d.TopK(dq, AlgoNaive, nil)
	var nre *NoReplicaError
	if !errors.As(err, &nre) {
		t.Fatalf("err is %T (%v), want *NoReplicaError", err, err)
	}
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("NoReplicaError %v does not unwrap to ErrUnavailable", err)
	}
	if _, _, err := d.Relation("left").Get(left[0].RowKey); !errors.As(err, &nre) {
		t.Fatalf("Get err is %T (%v), want *NoReplicaError", err, err)
	}
}

// TestQueryBoundsCrossSeam: QueryOptions deadlines and read budgets
// must survive the trip across the transport seam and come back as the
// same typed errors a local DB returns — a router that silently drops
// the caller's bounds runs unbounded queries on the nodes.
func TestQueryBoundsCrossSeam(t *testing.T) {
	left, right := distTuples(200)
	d := openLoopbackCluster(t, 3)
	dq := loadCluster(t, d, left, right)

	if _, err := d.TopK(dq, AlgoNaive, &QueryOptions{Deadline: time.Now().Add(time.Nanosecond)}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("spent deadline over the seam returned %T (%v), want ErrCanceled", err, err)
	}
	var be *BudgetExceededError
	if _, err := d.TopK(dq, AlgoNaive, &QueryOptions{MaxReadUnits: 10}); !errors.As(err, &be) {
		t.Fatalf("tripped budget over the seam returned %T (%v), want *BudgetExceededError", err, err)
	}
	if _, err := d.TopK(dq, AlgoNaive, nil); err != nil {
		t.Fatalf("unbounded query failed: %v", err)
	}
}

// TestWriteQuorumDegradation: with one replica down writes still reach
// their majority quorum; with two down they fail typed, naming the
// shortfall. A revived replica is dirty — excluded from leader duty —
// until a repair pass converges and re-admits it with every acked
// write.
func TestWriteQuorumDegradation(t *testing.T) {
	left, right := distTuples(80)
	d := openLoopbackCluster(t, 3)
	loadCluster(t, d, left, right)
	lh := d.Relation("left")

	// One down: quorum 2 of 3 still reachable.
	if err := d.StopNode("node2"); err != nil {
		t.Fatal(err)
	}
	if err := lh.Insert("dlq1", "jq", 0.95); err != nil {
		t.Fatalf("write with 2/3 replicas up failed: %v", err)
	}

	// Two down: quorum lost, typed failure.
	if err := d.StopNode("node1"); err != nil {
		t.Fatal(err)
	}
	err := lh.Insert("dlq2", "jq", 0.90)
	var rpe *ReplicationError
	if !errors.As(err, &rpe) {
		t.Fatalf("err is %T (%v), want *ReplicationError", err, err)
	}
	if rpe.Acked >= rpe.Quorum {
		t.Fatalf("ReplicationError reports acked %d >= quorum %d", rpe.Acked, rpe.Quorum)
	}

	// Revive everyone; the down nodes missed acked writes and must not
	// serve as leaders until repaired.
	for _, n := range []string{"node1", "node2"} {
		if err := d.StartNode(n); err != nil {
			t.Fatal(err)
		}
	}
	dirty := map[string]bool{}
	for _, st := range d.Status() {
		if st.Dirty {
			dirty[st.Name] = true
		}
	}
	if !dirty["node1"] || !dirty["node2"] {
		t.Fatalf("revived nodes not quarantined as dirty: %v", dirty)
	}

	rep, err := d.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("repair did not converge: %+v", rep.Failures)
	}
	for _, st := range d.Status() {
		if st.Dirty {
			t.Fatalf("node %s still dirty after convergent repair", st.Name)
		}
	}

	// Zero acked-write loss: the quorum-acked write survives everywhere,
	// and every executor agrees with a fresh oracle holding the same
	// acked state.
	got, ok, err := lh.Get("dlq1")
	if err != nil || !ok || got.Score != 0.95 {
		t.Fatalf("acked write lost after repair: %+v, %v, %v", got, ok, err)
	}
	for _, table := range d.NodeDB("node0").Cluster().TableNames() {
		assertReplicasByteIdentical(t, d, table)
	}
}

package rankjoin

import (
	"testing"
)

// allAlgos is every concrete algorithm, naive included.
func allAlgos() []Algorithm {
	return append([]Algorithm{AlgoNaive}, Algorithms()...)
}

// pageAll drains up to total results in pages of k through page tokens,
// returning the concatenation and the summed page costs (KV read
// units).
func pageAll(t *testing.T, db *DB, q Query, algo Algorithm, k, total int) ([]JoinResult, uint64) {
	t.Helper()
	var out []JoinResult
	var reads uint64
	opts := &QueryOptions{ISLBatch: 10}
	for len(out) < total {
		res, err := db.TopK(q.WithK(k), algo, opts)
		if err != nil {
			t.Fatalf("%s: page at %d: %v", algo, len(out), err)
		}
		out = append(out, res.Results...)
		reads += res.Cost.KVReads
		if res.NextPageToken == "" {
			break
		}
		opts = &QueryOptions{ISLBatch: 10, PageToken: res.NextPageToken}
	}
	if len(out) > total {
		out = out[:total]
	}
	return out, reads
}

// TestPagingMatchesBatchAllAlgorithms: for every algorithm, draining
// pages of 3 through page tokens must concatenate to exactly the batch
// TopK(n) result.
func TestPagingMatchesBatchAllAlgorithms(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 150)
	q, err := db.NewQuery("left", "right", Sum, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	const page, total = 3, 18
	for _, algo := range allAlgos() {
		batch, err := db.TopK(q.WithK(total), algo, &QueryOptions{ISLBatch: 10})
		if err != nil {
			t.Fatalf("%s: batch: %v", algo, err)
		}
		paged, _ := pageAll(t, db, q, algo, page, total)
		if len(paged) != len(batch.Results) {
			t.Fatalf("%s: paged %d results, batch %d", algo, len(paged), len(batch.Results))
		}
		for i := range paged {
			b := batch.Results[i]
			if paged[i].Left.RowKey != b.Left.RowKey || paged[i].Right.RowKey != b.Right.RowKey || paged[i].Score != b.Score {
				t.Fatalf("%s: page result %d = (%s,%s,%.4f), batch = (%s,%s,%.4f)", algo, i,
					paged[i].Left.RowKey, paged[i].Right.RowKey, paged[i].Score,
					b.Left.RowKey, b.Right.RowKey, b.Score)
			}
		}
	}
}

// TestPagingCheaperThanIndependentTopKs: the acceptance benchmark —
// paging 10×k through tokens must cost measurably fewer KV read units
// than the 10 independent, growing TopK calls a client without tokens
// would issue, for the natively incremental executors (ISL: the HRJN
// coordinator; DRJN: the band walk).
func TestPagingCheaperThanIndependentTopKs(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 600)
	const k, pages = 10, 10
	q, err := db.NewQuery("left", "right", Sum, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL, AlgoDRJN); err != nil {
		t.Fatal(err)
	}

	for _, algo := range []Algorithm{AlgoISL, AlgoDRJN} {
		// Token path: one run of k, then resumed pages.
		paged, pagedReads := pageAll(t, db, q, algo, k, k*pages)
		if len(paged) != k*pages {
			t.Fatalf("%s: paged only %d of %d results", algo, len(paged), k*pages)
		}

		// Tokenless client: to show results (i-1)k..ik it must re-run
		// TopK(ik) for every page.
		var rerunReads uint64
		for i := 1; i <= pages; i++ {
			res, err := db.TopK(q.WithK(k*i), algo, &QueryOptions{ISLBatch: 10})
			if err != nil {
				t.Fatal(err)
			}
			rerunReads += res.Cost.KVReads
		}

		if pagedReads >= rerunReads {
			t.Errorf("%s: paging read %d units, independent TopKs read %d — paging should be cheaper",
				algo, pagedReads, rerunReads)
		}
		t.Logf("%s: deep pagination %d pages x %d: paged=%d read units, independent reruns=%d (%.1fx)",
			algo, pages, k, pagedReads, rerunReads, float64(rerunReads)/float64(pagedReads))
	}
}

// TestStreamMatchesTopK: DB.Stream must enumerate exactly the batch
// order, and closing it early must stop all read-unit consumption.
func TestStreamMatchesTopK(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 200)
	q, err := db.NewQuery("left", "right", Product, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL); err != nil {
		t.Fatal(err)
	}
	const n = 37
	batch, err := db.TopK(q.WithK(n), AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := db.Stream(q, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []JoinResult
	for len(got) < n && rows.Next() {
		got = append(got, rows.Result())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if rows.Algorithm() != "isl" {
		t.Errorf("stream algorithm = %q, want isl", rows.Algorithm())
	}
	if len(got) != len(batch.Results) {
		t.Fatalf("stream yielded %d results, batch %d", len(got), len(batch.Results))
	}
	for i := range got {
		b := batch.Results[i]
		if got[i].Left.RowKey != b.Left.RowKey || got[i].Right.RowKey != b.Right.RowKey || got[i].Score != b.Score {
			t.Fatalf("stream result %d = (%s,%s,%.4f), batch = (%s,%s,%.4f)", i,
				got[i].Left.RowKey, got[i].Right.RowKey, got[i].Score,
				b.Left.RowKey, b.Right.RowKey, b.Score)
		}
	}

	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	before := db.Metrics().Snapshot()
	if rows.Next() {
		t.Error("Next returned true after Close")
	}
	if delta := db.Metrics().Snapshot().Sub(before); delta.KVReads != 0 {
		t.Errorf("closed stream consumed %d read units", delta.KVReads)
	}
}

// TestStreamAutoPlans: AlgoAuto streaming must pick a runnable executor
// and enumerate correctly.
func TestStreamAutoPlans(t *testing.T) {
	db := mustOpen(t, Config{})
	left, right := loadTwoRelations(t, db, 150)
	q, err := db.NewQuery("left", "right", Sum, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL, AlgoDRJN); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Stream(q, AlgoAuto, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var scores []float64
	for len(scores) < 15 && rows.Next() {
		scores = append(scores, rows.Result().Score)
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	want := refTopK(left, right, Sum, 15)
	if len(scores) != len(want) {
		t.Fatalf("stream yielded %d scores, want %d", len(scores), len(want))
	}
	for i := range want {
		if d := scores[i] - want[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("score[%d] = %.6f, want %.6f", i, scores[i], want[i])
		}
	}
}

// TestPageTokenSemantics: tokens are single-use, query-bound, and
// algorithm-bound.
func TestPageTokenSemantics(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL); err != nil {
		t.Fatal(err)
	}
	res, err := db.TopK(q, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NextPageToken == "" {
		t.Fatal("full page came back without a NextPageToken")
	}

	// Wrong algorithm for the token.
	if _, err := db.TopK(q, AlgoBFHM, &QueryOptions{PageToken: res.NextPageToken}); err == nil {
		t.Error("resume with mismatched algorithm succeeded")
	}
	// The failed resume consumed the token (single-use).
	if _, err := db.TopK(q, AlgoISL, &QueryOptions{PageToken: res.NextPageToken}); err == nil {
		t.Error("token survived a failed resume (want single-use)")
	}
	// Unknown token.
	if _, err := db.TopK(q, AlgoISL, &QueryOptions{PageToken: "pt-bogus"}); err == nil {
		t.Error("resume with unknown token succeeded")
	}

	// A fresh run's token resumes fine and rotates.
	res, err = db.TopK(q, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db.TopK(q, AlgoISL, &QueryOptions{PageToken: res.NextPageToken})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NextPageToken == res.NextPageToken {
		t.Error("page token not rotated")
	}
	if res2.Algorithm != "isl" {
		t.Errorf("resumed page algorithm = %q", res2.Algorithm)
	}
}

// TestStreamN: the n-way stream must match TopKN prefixes.
func TestStreamN(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 80)
	mq, err := db.NewMultiQuery([]string{"left", "right"}, SumN, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := db.TopKN(mq.WithK(12), AlgoNaive, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.StreamN(mq, AlgoNaive, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []NJoinResult
	for len(got) < 12 && rows.Next() {
		got = append(got, rows.Result())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if len(got) != len(batch.Results) {
		t.Fatalf("streamN yielded %d, batch %d", len(got), len(batch.Results))
	}
	for i := range got {
		if got[i].Score != batch.Results[i].Score {
			t.Fatalf("streamN score[%d] = %.4f, batch %.4f", i, got[i].Score, batch.Results[i].Score)
		}
	}
	if _, err := db.StreamN(mq, AlgoBFHM, nil); err == nil {
		t.Error("StreamN accepted an unsupported algorithm")
	}
}

package rankjoin

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// catalogMetaKey is the manifest Meta slot holding the serialized
// rankjoin catalog.
const catalogMetaKey = "catalog"

// catalog is the durable description of everything the rankjoin layer
// knows beyond the raw tables: defined relations, built indexes, and
// the index-construction config. The index structures themselves are
// tiny descriptors (table names, layouts, filter widths); the bulky
// index *data* lives in ordinary cluster tables and persists with them,
// so reopening a directory restores every index without rebuilding.
type catalog struct {
	Relations []string
	IJLMR     map[string]*core.IJLMRIndex `json:",omitempty"`
	ISL       map[string]*core.ISLIndex   `json:",omitempty"`
	BFHM      map[string]*core.BFHMIndex  `json:",omitempty"`
	DRJN      map[string]*core.DRJNIndex  `json:",omitempty"`
	ISLN      map[string]*core.ISLNIndex  `json:",omitempty"`
	IdxCfg    IndexConfig
}

// relationFor renders the canonical storage mapping for a relation name
// — shared by DefineRelation and catalog restore so the two can never
// disagree on table layout.
func relationFor(name string) core.Relation {
	return core.Relation{
		Name:      name,
		Table:     "rel_" + name,
		Family:    "d",
		JoinQual:  "join",
		ScoreQual: "score",
	}
}

// OpenAt opens (or initializes) a durable DB rooted at cfg.Dir: the
// cluster recovers its tables from the directory's manifest, SSTables,
// and WALs, and the rankjoin catalog restores every defined relation
// and built index descriptor — no rebuild, no reload. Close the DB to
// release file handles and persist counters.
func OpenAt(cfg Config) (*DB, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("rankjoin: OpenAt requires Config.Dir")
	}
	p := sim.LC()
	if cfg.Profile != nil {
		p = *cfg.Profile
	}
	cluster, err := kvstore.OpenClusterFS(p, cfg.Metrics, cfg.Dir, cfg.VFS)
	if err != nil {
		return nil, err
	}
	db := newDB(cluster)
	if err := db.loadCatalog(); err != nil {
		cluster.Close()
		return nil, err
	}
	return db, nil
}

// Close releases the underlying cluster's file handles and persists its
// counters. A memory-backed DB closes trivially. The DB must not be
// used afterwards.
func (db *DB) Close() error {
	return db.cluster.Close()
}

// loadCatalog restores relations and index descriptors from the
// cluster's durable metadata.
func (db *DB) loadCatalog() error {
	raw := db.cluster.Meta(catalogMetaKey)
	if raw == "" {
		return nil
	}
	var cat catalog
	if err := json.Unmarshal([]byte(raw), &cat); err != nil {
		return fmt.Errorf("rankjoin: corrupt catalog: %w", err)
	}
	db.mu.Lock()
	for _, name := range cat.Relations {
		db.relations[name] = &RelationHandle{db: db, rel: relationFor(name)}
	}
	db.idxCfg = cat.IdxCfg
	db.mu.Unlock()
	for id, idx := range cat.ISLN {
		db.store.PutISLN(id, idx)
	}
	for id, idx := range cat.IJLMR {
		db.store.PutIJLMR(id, idx)
	}
	for id, idx := range cat.ISL {
		db.store.PutISL(id, idx)
	}
	for rel, idx := range cat.BFHM {
		db.store.PutBFHM(rel, idx)
	}
	for rel, idx := range cat.DRJN {
		db.store.PutDRJN(rel, idx)
	}
	return nil
}

// saveCatalog persists the current catalog. A no-op for memory-backed
// DBs (SetMeta stores in memory there; skipping keeps the write path
// free of JSON rendering). Callers invoke it after every catalog
// mutation: DefineRelation, EnsureIndexes, EnsureMultiIndexes,
// SetIndexConfig.
func (db *DB) saveCatalog() error {
	if !db.cluster.DiskBacked() {
		return nil
	}
	cat := catalog{
		IJLMR: map[string]*core.IJLMRIndex{},
		ISL:   map[string]*core.ISLIndex{},
		BFHM:  map[string]*core.BFHMIndex{},
		DRJN:  map[string]*core.DRJNIndex{},
		ISLN:  map[string]*core.ISLNIndex{},
	}
	db.mu.Lock()
	for name := range db.relations {
		cat.Relations = append(cat.Relations, name)
	}
	cat.IdxCfg = db.idxCfg
	db.mu.Unlock()
	sort.Strings(cat.Relations)
	db.store.EachISLN(func(id string, idx *core.ISLNIndex) { cat.ISLN[id] = idx })
	db.store.EachIJLMR(func(id string, idx *core.IJLMRIndex) { cat.IJLMR[id] = idx })
	db.store.EachISL(func(id string, idx *core.ISLIndex) { cat.ISL[id] = idx })
	db.store.EachBFHM(func(rel string, idx *core.BFHMIndex) { cat.BFHM[rel] = idx })
	db.store.EachDRJN(func(rel string, idx *core.DRJNIndex) { cat.DRJN[rel] = idx })
	raw, err := json.Marshal(&cat)
	if err != nil {
		return err
	}
	return db.cluster.SetMeta(catalogMetaKey, string(raw))
}

// Cold-start recovery at the public API: a durable DB reopened from its
// directory must be indistinguishable from the one that wrote it — same
// relations, same index descriptors (no rebuild), same top-k results on
// every executor, and a write path that keeps maintaining every index.
package rankjoin

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestColdStartFreshnessOracle runs a randomized workload on a durable
// DB, closes it, reopens the directory, and requires all seven
// executors to match the in-memory oracle — with NO EnsureIndexes call
// after reopen, so a recovered catalog (not a rebuild) is what answers.
func TestColdStartFreshnessOracle(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenAt(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 12, DRJNJoinParts: 16, BFHMBuckets: 10})
	left, right := loadTwoRelations(t, db, 120)
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(4077))
	lh, rh := db.Relation("left"), db.Relation("right")
	sides := []struct {
		h      *RelationHandle
		tuples *[]Tuple
		prefix string
	}{{lh, &left, "l"}, {rh, &right, "r"}}
	for op := 0; op < 40; op++ {
		s := sides[rng.Intn(2)]
		switch {
		case rng.Intn(3) == 0 && len(*s.tuples) > 1: // delete
			i := rng.Intn(len(*s.tuples))
			tp := (*s.tuples)[i]
			if err := s.h.Delete(tp.RowKey, tp.JoinValue, tp.Score); err != nil {
				t.Fatal(err)
			}
			*s.tuples = append((*s.tuples)[:i], (*s.tuples)[i+1:]...)
		default: // insert or overwrite
			tp := Tuple{
				RowKey:    fmt.Sprintf("%sn%04d", s.prefix, op),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(30)),
				Score:     float64(rng.Intn(1000)) / 1000,
			}
			if err := s.h.Insert(tp.RowKey, tp.JoinValue, tp.Score); err != nil {
				t.Fatal(err)
			}
			*s.tuples = append(*s.tuples, tp)
		}
	}
	assertTopKFresh(t, db, q, left, right, Sum, "pre-close")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenAt(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.RelationNames(); len(got) != 2 || got[0] != "left" || got[1] != "right" {
		t.Fatalf("recovered relations %v, want [left right]", got)
	}
	q2, err := db2.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	// No EnsureIndexes here: the recovered catalog must be enough.
	assertTopKFresh(t, db2, q2, left, right, Sum, "recovered")

	// The recovered maintainer must keep every index fresh: a
	// score-1.0 insert on both sides creates a new top pair that all
	// seven executors must see immediately.
	if err := db2.Relation("left").Insert("lHOT", "hotjoin", 1.0); err != nil {
		t.Fatal(err)
	}
	left = append(left, Tuple{RowKey: "lHOT", JoinValue: "hotjoin", Score: 1.0})
	if err := db2.Relation("right").Insert("rHOT", "hotjoin", 0.99); err != nil {
		t.Fatal(err)
	}
	right = append(right, Tuple{RowKey: "rHOT", JoinValue: "hotjoin", Score: 0.99})
	assertTopKFresh(t, db2, q2, left, right, Sum, "post-recovery write")
}

// TestOpenAtValidation covers the config edge: OpenAt without a
// directory is an error, not a silent fall-back to a memory DB.
func TestOpenAtValidation(t *testing.T) {
	if _, err := OpenAt(Config{}); err == nil {
		t.Fatal("OpenAt with empty Dir accepted")
	}
}

// TestCatalogPersistsMultiwayIndexes checks the n-way path: an ISLN
// index built before close serves StreamN/TopKN after reopen without
// EnsureMultiIndexes.
func TestCatalogPersistsMultiwayIndexes(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenAt(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, name := range []string{"x", "y", "z"} {
		h, err := db.DefineRelation(name)
		if err != nil {
			t.Fatal(err)
		}
		var tuples []Tuple
		for i := 0; i < 60; i++ {
			tuples = append(tuples, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", name, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(12)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		if err := h.BulkLoad(tuples); err != nil {
			t.Fatal(err)
		}
	}
	mq, err := db.NewMultiQuery([]string{"x", "y", "z"}, SumN, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureMultiIndexes(mq); err != nil {
		t.Fatal(err)
	}
	want, err := db.TopKN(mq, AlgoISL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenAt(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mq2, err := db2.NewMultiQuery([]string{"x", "y", "z"}, SumN, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.TopKN(mq2, AlgoISL, nil) // no EnsureMultiIndexes
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("recovered n-way top-k has %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Score != want.Results[i].Score {
			t.Fatalf("result %d: score %v, want %v", i, got.Results[i].Score, want.Results[i].Score)
		}
	}
}

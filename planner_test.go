// Tier-2 planner-accuracy tests: run the paper's Q1/Q2 workloads at
// several k values with every executor, and assert the cost-based
// planner's chosen executor is within a bounded factor of the best
// measured one. This is the regression net for the estimators in
// internal/core/estimate.go — if a formula drifts far enough to change
// plans for the worse, this fails.
package rankjoin_test

import (
	"testing"
	"time"

	rankjoin "repro"
	"repro/internal/benchkit"
	"repro/internal/sim"
)

// plannerBoundFactor is the accepted slack: the chosen executor's
// measured cost may be at most this multiple of the best measured cost.
const plannerBoundFactor = 1.5

func TestPlannerAccuracy(t *testing.T) {
	env, err := benchkit.Setup(sim.LC(), 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := []struct {
		name string
		q    rankjoin.Query
	}{{"q1", env.Q1}, {"q2", env.Q2}}
	algos := append(benchkit.Algorithms, rankjoin.AlgoNaive)

	for _, qc := range queries {
		for _, k := range []int{1, 10, 100} {
			q := qc.q.WithK(k)
			opts := &rankjoin.QueryOptions{ISLBatch: env.ISLBatch}

			// Measure every executor.
			measured := map[rankjoin.Algorithm]time.Duration{}
			best := time.Duration(0)
			for _, algo := range algos {
				res, err := env.DB.TopK(q, algo, opts)
				if err != nil {
					t.Fatalf("%s k=%d %s: %v", qc.name, k, algo, err)
				}
				measured[algo] = res.Cost.SimTime
				if best == 0 || res.Cost.SimTime < best {
					best = res.Cost.SimTime
				}
			}

			// Plan and run automatically.
			res, err := env.DB.TopK(q, rankjoin.AlgoAuto, opts)
			if err != nil {
				t.Fatalf("%s k=%d auto: %v", qc.name, k, err)
			}
			if res.Estimate == nil {
				t.Fatalf("%s k=%d: planned result carries no estimate", qc.name, k)
			}
			chosen := rankjoin.Algorithm(res.Algorithm)
			chosenMeasured, ok := measured[chosen]
			if !ok {
				t.Fatalf("%s k=%d: planner chose unmeasured executor %q", qc.name, k, chosen)
			}
			t.Logf("%s k=%-4d chosen=%-6s est=%-12v measured=%-12v best=%-12v (naive=%v isl=%v bfhm=%v drjn=%v ijlmr=%v hive=%v pig=%v)",
				qc.name, k, chosen, res.Estimate.SimTime, chosenMeasured, best,
				measured[rankjoin.AlgoNaive], measured[rankjoin.AlgoISL],
				measured[rankjoin.AlgoBFHM], measured[rankjoin.AlgoDRJN],
				measured[rankjoin.AlgoIJLMR], measured[rankjoin.AlgoHive],
				measured[rankjoin.AlgoPig])
			if float64(chosenMeasured) > plannerBoundFactor*float64(best) {
				t.Errorf("%s k=%d: planner chose %s (measured %v), more than %.1fx the best measured %v",
					qc.name, k, chosen, chosenMeasured, plannerBoundFactor, best)
			}
		}
	}
}

// TestExplainAllCandidates checks the acceptance criterion that Explain
// returns ranked candidates with non-zero cost estimates for every
// registered executor — even on a DB with no indexes built at all.
func TestExplainAllCandidates(t *testing.T) {
	db := mustOpenDB(t)
	l, err := db.DefineRelation("l")
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.DefineRelation("r")
	if err != nil {
		t.Fatal(err)
	}
	var lt, rt []rankjoin.Tuple
	for i := 0; i < 300; i++ {
		lt = append(lt, rankjoin.Tuple{RowKey: key("l", i), JoinValue: key("j", i%40), Score: float64(i%997) / 997})
		rt = append(rt, rankjoin.Tuple{RowKey: key("r", i), JoinValue: key("j", i%40), Score: float64((i*7)%997) / 997})
	}
	if err := l.BulkLoad(lt); err != nil {
		t.Fatal(err)
	}
	if err := r.BulkLoad(rt); err != nil {
		t.Fatal(err)
	}
	q, err := db.NewQuery("l", "r", rankjoin.Sum, 10)
	if err != nil {
		t.Fatal(err)
	}

	p, err := db.Explain(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Candidates) != 8 {
		t.Fatalf("Explain returned %d candidates, want 8", len(p.Candidates))
	}
	seen := map[string]bool{}
	for _, cand := range p.Candidates {
		seen[cand.Executor] = true
		if cand.Estimate.SimTime <= 0 || cand.Estimate.KVReads == 0 || cand.Estimate.NetworkBytes == 0 {
			t.Errorf("candidate %s has a zero cost estimate: %+v", cand.Executor, cand.Estimate)
		}
	}
	for _, name := range []string{"naive", "hive", "pig", "ijlmr", "isl", "bfhm", "drjn", "anyk"} {
		if !seen[name] {
			t.Errorf("Explain is missing executor %s", name)
		}
	}
	// Ranking must be monotone in the objective.
	for i := 1; i < len(p.Candidates); i++ {
		if p.Candidates[i].Estimate.SimTime < p.Candidates[i-1].Estimate.SimTime {
			t.Errorf("candidates not ranked: %s (%v) after %s (%v)",
				p.Candidates[i].Executor, p.Candidates[i].Estimate.SimTime,
				p.Candidates[i-1].Executor, p.Candidates[i-1].Estimate.SimTime)
		}
	}

	// With no index built, auto must still run (an index-free strategy).
	res, err := db.TopK(q, rankjoin.AlgoAuto, nil)
	if err != nil {
		t.Fatalf("AlgoAuto with no indexes: %v", err)
	}
	if res.Algorithm == "" || res.Estimate == nil {
		t.Fatalf("planned result not stamped: algorithm=%q estimate=%v", res.Algorithm, res.Estimate)
	}
	ex := rankjoin.Algorithm(res.Algorithm)
	if ex == rankjoin.AlgoISL || ex == rankjoin.AlgoBFHM || ex == rankjoin.AlgoDRJN || ex == rankjoin.AlgoIJLMR {
		t.Fatalf("planner chose index-based %s with no index built", ex)
	}

	// After building indexes, Explain marks them ready and the planner
	// may now pick them.
	if err := db.EnsureIndexes(q, rankjoin.AlgoISL, rankjoin.AlgoBFHM, rankjoin.AlgoDRJN, rankjoin.AlgoIJLMR, rankjoin.AlgoAnyK); err != nil {
		t.Fatal(err)
	}
	p2, err := db.Explain(q, &rankjoin.ExplainOptions{Objective: rankjoin.ObjectiveDollars})
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range p2.Candidates {
		if !cand.IndexReady {
			t.Errorf("candidate %s not index-ready after EnsureIndexes", cand.Executor)
		}
	}
	if p2.Stats.Source == "uniform" {
		t.Errorf("stats source still %q after building DRJN histograms", p2.Stats.Source)
	}
}

func key(prefix string, i int) string {
	return prefix + string(rune('a'+i/26%26)) + string(rune('a'+i%26)) + itoa(i)
}

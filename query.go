package rankjoin

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Query is a top-k rank-join over defined relations. Internally every
// query — the two-way form NewQuery builds, the star form NewMultiQuery
// builds, and general acyclic shapes from NewTreeQuery — is one
// JoinTree; executors that only handle a subset of shapes reject the
// rest with a shape error.
type Query struct {
	t *core.JoinTree
}

// NewQuery builds a query joining two defined relations on their join
// attributes, ranking by the monotonic aggregate f, keeping k results.
func (db *DB) NewQuery(left, right string, f ScoreFunc, k int) (Query, error) {
	db.mu.Lock()
	l, lok := db.relations[left]
	r, rok := db.relations[right]
	db.mu.Unlock()
	if !lok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", left)
	}
	if !rok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", right)
	}
	q := core.Query{Left: l.rel, Right: r.rel, Score: f, K: k}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return Query{t: core.TreeFromQuery(q)}, nil
}

// WithK derives a query with a different k (indexes are shared; the
// derived query's identity — and so its planner-cache and page-token
// keys — still carries the new k).
func (q Query) WithK(k int) Query {
	nt := *q.t
	nt.K = k
	return Query{t: &nt}
}

// K returns the query's result size target.
func (q Query) K() int { return q.t.K }

// ID returns the query's deterministic identifier. Distinct join
// shapes over the same relations get distinct IDs (band/theta edges
// are encoded), so cache entries never collide across shapes.
func (q Query) ID() string { return q.t.ID() }

// executorFor resolves a concrete (non-auto) algorithm to its executor.
func executorFor(algo Algorithm) (core.Executor, error) {
	ex, ok := core.Lookup(string(algo))
	if !ok {
		return nil, fmt.Errorf("rankjoin: unknown algorithm %q", algo)
	}
	return ex, nil
}

// checkShape rejects a hand-picked executor that cannot run the tree's
// shape, before any work is spent on it.
func checkShape(ex core.Executor, t *core.JoinTree) error {
	if !ex.Supports(t) {
		return fmt.Errorf("rankjoin: algorithm %q does not support join shape %s (try %s or %s)",
			ex.Name(), t.ID(), AlgoNaive, AlgoAnyK)
	}
	return nil
}

// indexConfig snapshots the DB's index-construction defaults under the
// lock (SetIndexConfig writes them there) and fills unset fields.
func (db *DB) indexConfig() core.IndexBuildConfig {
	db.mu.Lock()
	cfg := db.idxCfg
	db.mu.Unlock()
	return core.IndexBuildConfig{
		BFHMBuckets:   cfg.BFHMBuckets,
		BFHMFPP:       cfg.BFHMFPP,
		DRJNBuckets:   cfg.DRJNBuckets,
		DRJNJoinParts: cfg.DRJNJoinParts,
	}.WithDefaults()
}

// EnsureIndexes builds (idempotently) the index structures the listed
// algorithms need for this query. Index build costs are charged to the
// DB's metrics — snapshot before/after to measure them (Fig. 9).
//
// Concurrent EnsureIndexes calls are safe: builds serialize per index
// family (single-flight), so racing callers can never double-build an
// index or construct BFHM pairs with mismatched filter widths.
func (db *DB) EnsureIndexes(q Query, algos ...Algorithm) error {
	cfg := db.indexConfig()
	for _, algo := range algos {
		if algo == AlgoAuto {
			return fmt.Errorf("rankjoin: %s is a planner mode, not an index family; list concrete algorithms", AlgoAuto)
		}
		ex, err := executorFor(algo)
		if err != nil {
			return err
		}
		if err := ex.EnsureIndex(db.cluster, q.t, db.store, cfg); err != nil {
			return err
		}
	}
	return db.saveCatalog()
}

// SetIndexConfig overrides index-construction defaults for subsequent
// EnsureIndexes calls.
func (db *DB) SetIndexConfig(cfg IndexConfig) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.idxCfg = cfg
}

// IndexDiskSize reports the stored bytes of the named algorithm's
// index(es) for a query (the Section 7.2 index-size experiment). It
// returns zero for index-free algorithms.
func (db *DB) IndexDiskSize(q Query, algo Algorithm) uint64 {
	ex, err := executorFor(algo)
	if err != nil {
		return 0
	}
	return ex.IndexSize(db.cluster, q.t, db.store)
}

// Explain plans the query without running it: it gathers statistics
// (DRJN histograms, BFHM filter intersections, live table stats) and
// returns every registered executor ranked by predicted cost under the
// chosen objective. Plan.Chosen is what AlgoAuto would execute right
// now; Plan.Best additionally considers indexes not yet built.
func (db *DB) Explain(q Query, opts *ExplainOptions) (*Plan, error) {
	o := ExplainOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Objective == "" {
		// Accept the objective via the embedded QueryOptions too — the
		// field TopK's auto mode reads — so either spelling works.
		o.Objective = o.Query.Objective
	}
	// Plan on a private metrics lane, like TopK: PlannerCost must stay
	// per-query even when concurrent queries share the DB, and the
	// planning work still folds into the DB-wide clock.
	qm := sim.NewLane(db.cluster.Metrics())
	p, err := plan.Explain(db.cluster.WithMetrics(qm), q.t, db.store, plan.Options{
		Objective: o.Objective,
		Exec:      o.Query.withDefaults().execOptions(),
		Cache:     db.planCache,
		Stream:    o.Stream,
	})
	db.cluster.Metrics().Advance(qm.SimTime())
	return p, err
}

// TopK executes the query with the chosen algorithm. Index-based
// algorithms require a prior EnsureIndexes call, while AlgoAuto plans
// the execution first: the cost-based planner ranks every registered
// executor and runs the cheapest one whose indexes are already built
// (or which needs none). The Result carries the ranked pairs, the
// resources consumed (the paper's three metrics: Cost.SimTime,
// Cost.NetworkBytes, Cost.KVReads / Dollars()), the executor that ran,
// and — for planned executions — the planner's cost estimate, making
// the estimated-vs-actual error measurable per query.
//
// Pagination: when exactly k results come back, Result.NextPageToken
// resumes the query where it stopped — pass it through
// QueryOptions.PageToken (with the same query) and the next k results
// are drained from the retained cursor, paying marginal cost for
// incremental executors (ISL, DRJN) instead of a from-scratch rerun.
// Tokens are single-use; each page hands out a fresh one.
//
// TopK is safe for concurrent callers sharing one DB: each execution
// meters a private per-query collector (so Result.Cost never includes a
// concurrent query's work) and folds its totals back into the DB-wide
// Metrics when it completes.
func (db *DB) TopK(q Query, algo Algorithm, opts *QueryOptions) (*Result, error) {
	o := QueryOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	if o.PageToken != "" {
		return db.nextPage(q, algo, o)
	}
	// Per-query metrics lane: resource counters forward to the DB-wide
	// collector as they accrue; the query's clock stays isolated and is
	// folded in once, below, keeping the global clock a cumulative
	// busy-time total even when queries overlap.
	qm := sim.NewLane(db.cluster.Metrics())
	qc := db.cluster.WithMetrics(qm)
	res, cur, budget, err := db.topKOn(qc, q, algo, o)
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	db.cluster.Metrics().Advance(res.Cost.SimTime)
	db.stashOrClose(res, cur, qm, q, budget)
	return res, nil
}

// stashOrClose retains the drained cursor behind a fresh page token
// when more results may exist (the page came back full), else closes
// it.
func (db *DB) stashOrClose(res *Result, cur core.Cursor, lane *sim.Metrics, q Query, budget *core.Budget) {
	if len(res.Results) == q.K() && q.K() > 0 {
		res.NextPageToken = db.cursors.put(&pagedCursor{
			cur:     cur,
			lane:    lane,
			algo:    res.Algorithm,
			queryID: q.ID(),
			folded:  lane.SimTime(),
			budget:  budget,
		})
		return
	}
	_ = cur.Close()
}

// nextPage resumes a paged query from its retained cursor.
func (db *DB) nextPage(q Query, algo Algorithm, o QueryOptions) (*Result, error) {
	pc, err := db.cursors.take(o.PageToken)
	if err != nil {
		return nil, err
	}
	if pc.queryID != q.ID() {
		_ = pc.cur.Close()
		return nil, fmt.Errorf("rankjoin: page token belongs to query %s, not %s", pc.queryID, q.ID())
	}
	if algo != AlgoAuto && string(algo) != pc.algo {
		_ = pc.cur.Close()
		return nil, fmt.Errorf("rankjoin: page token was produced by %s, not %s", pc.algo, algo)
	}
	// This page runs under the resuming request's bounds, not the
	// (possibly long-dead) context of the request that opened the
	// cursor — an HTTP caller's first request context is canceled the
	// moment its response is written.
	pc.budget.Rebind(o.Context, o.Deadline, o.MaxReadUnits)
	before := pc.lane.Snapshot()
	results, err := drainCursor(pc.cur, q.K())
	if err != nil {
		// Fold the failed page's accrued clock time like every other
		// error path, so DB-wide SimTime stays consistent with the
		// resource counters that already forwarded.
		if d := pc.lane.SimTime() - pc.folded; d > 0 {
			db.cluster.Metrics().Advance(d)
		}
		_ = pc.cur.Close()
		return nil, attachPartials(err, results)
	}
	res := &Result{
		Results:   results,
		Cost:      pc.lane.Snapshot().Sub(before),
		Algorithm: pc.algo,
	}
	// Fold only this page's clock progress into the DB-wide metrics.
	if d := pc.lane.SimTime() - pc.folded; d > 0 {
		db.cluster.Metrics().Advance(d)
		pc.folded += d
	}
	db.stashOrClose(res, pc.cur, pc.lane, q, pc.budget)
	return res, nil
}

// drainCursor pulls up to k results. On error the results collected so
// far come back with it, so cancellation can surface them as partials.
func drainCursor(cur core.Cursor, k int) ([]JoinResult, error) {
	out := make([]JoinResult, 0, k)
	for len(out) < k {
		r, err := cur.Next()
		if err != nil {
			return out, err
		}
		if r == nil {
			break
		}
		out = append(out, *r)
	}
	return out, nil
}

// attachPartials records the results collected before a budget or
// cancellation error fired onto the typed error itself, so a caller
// holding only the error can still degrade gracefully.
func attachPartials(err error, partial []JoinResult) error {
	var ce *core.CanceledError
	if errors.As(err, &ce) {
		ce.Partial = partial
	}
	var be *core.BudgetExceededError
	if errors.As(err, &be) {
		be.Partial = partial
	}
	return err
}

// topKOn dispatches the query on the given cluster view, returning the
// result plus the still-open cursor that produced it (for pagination)
// and the budget the cursor runs under (for per-page rebinding; nil
// when the query is unbounded).
func (db *DB) topKOn(c *kvstore.Cluster, q Query, algo Algorithm, o QueryOptions) (*Result, core.Cursor, *core.Budget, error) {
	// One ExecOptions (and so one Budget) for the whole query: the same
	// instance drives the executor's per-result checks and, via the
	// guarded view, every metered RPC underneath — scans, index builds,
	// MapReduce tasks.
	eo := o.execOptions()
	c = eo.Budget.GuardedView(c)
	var ex core.Executor
	var p *plan.Plan
	var err error
	if algo == AlgoAuto {
		// The planner's statistics reads are charged to the same
		// per-query lane as the execution, so Result.Cost covers the
		// whole planned query; the planning share is reported
		// separately in Result.PlannerCost.
		ex, p, err = plan.Choose(c, q.t, db.store, plan.Options{
			Objective: o.Objective,
			Exec:      eo,
			Cache:     db.planCache,
		})
	} else {
		ex, err = executorFor(algo)
		if err == nil {
			err = checkShape(ex, q.t)
		}
	}
	if err != nil {
		return nil, nil, nil, err
	}
	before := c.Metrics().Snapshot()
	cur, err := ex.Open(c, q.t, db.store, eo)
	if err != nil {
		return nil, nil, nil, err
	}
	results, err := drainCursor(cur, q.K())
	if err != nil {
		_ = cur.Close()
		return nil, nil, nil, attachPartials(err, results)
	}
	res := &Result{
		Results:   results,
		Cost:      c.Metrics().Snapshot().Sub(before),
		Algorithm: ex.Name(),
	}
	if p != nil {
		est := p.ChosenEstimate()
		res.Estimate = &est
		res.PlannerCost = p.PlannerCost
		// The planner's reads accrued on the same lane before the
		// cursor's cost delta started; fold them into the total.
		res.Cost = res.Cost.Add(p.PlannerCost)
	}
	return res, cur, eo.Budget, nil
}

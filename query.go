package rankjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Query is a two-way top-k equi-join over two defined relations.
type Query struct {
	q core.Query
}

// NewQuery builds a query joining two defined relations on their join
// attributes, ranking by the monotonic aggregate f, keeping k results.
func (db *DB) NewQuery(left, right string, f ScoreFunc, k int) (Query, error) {
	db.mu.Lock()
	l, lok := db.relations[left]
	r, rok := db.relations[right]
	db.mu.Unlock()
	if !lok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", left)
	}
	if !rok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", right)
	}
	q := core.Query{Left: l.rel, Right: r.rel, Score: f, K: k}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return Query{q: q}, nil
}

// WithK derives a query with a different k (indexes are shared).
func (q Query) WithK(k int) Query {
	out := q
	out.q.K = k
	return out
}

// K returns the query's result size target.
func (q Query) K() int { return q.q.K }

// ID returns the query's deterministic identifier.
func (q Query) ID() string { return q.q.ID() }

// executorFor resolves a concrete (non-auto) algorithm to its executor.
func executorFor(algo Algorithm) (core.Executor, error) {
	ex, ok := core.Lookup(string(algo))
	if !ok {
		return nil, fmt.Errorf("rankjoin: unknown algorithm %q", algo)
	}
	return ex, nil
}

// indexConfig snapshots the DB's index-construction defaults under the
// lock (SetIndexConfig writes them there) and fills unset fields.
func (db *DB) indexConfig() core.IndexBuildConfig {
	db.mu.Lock()
	cfg := db.idxCfg
	db.mu.Unlock()
	return core.IndexBuildConfig{
		BFHMBuckets:   cfg.BFHMBuckets,
		BFHMFPP:       cfg.BFHMFPP,
		DRJNBuckets:   cfg.DRJNBuckets,
		DRJNJoinParts: cfg.DRJNJoinParts,
	}.WithDefaults()
}

// EnsureIndexes builds (idempotently) the index structures the listed
// algorithms need for this query. Index build costs are charged to the
// DB's metrics — snapshot before/after to measure them (Fig. 9).
//
// Concurrent EnsureIndexes calls are safe: builds serialize per index
// family (single-flight), so racing callers can never double-build an
// index or construct BFHM pairs with mismatched filter widths.
func (db *DB) EnsureIndexes(q Query, algos ...Algorithm) error {
	cfg := db.indexConfig()
	for _, algo := range algos {
		if algo == AlgoAuto {
			return fmt.Errorf("rankjoin: %s is a planner mode, not an index family; list concrete algorithms", AlgoAuto)
		}
		ex, err := executorFor(algo)
		if err != nil {
			return err
		}
		if err := ex.EnsureIndex(db.cluster, q.q, db.store, cfg); err != nil {
			return err
		}
	}
	return nil
}

// SetIndexConfig overrides index-construction defaults for subsequent
// EnsureIndexes calls.
func (db *DB) SetIndexConfig(cfg IndexConfig) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.idxCfg = cfg
}

// IndexDiskSize reports the stored bytes of the named algorithm's
// index(es) for a query (the Section 7.2 index-size experiment). It
// returns zero for index-free algorithms.
func (db *DB) IndexDiskSize(q Query, algo Algorithm) uint64 {
	ex, err := executorFor(algo)
	if err != nil {
		return 0
	}
	return ex.IndexSize(db.cluster, q.q, db.store)
}

// Explain plans the query without running it: it gathers statistics
// (DRJN histograms, BFHM filter intersections, live table stats) and
// returns every registered executor ranked by predicted cost under the
// chosen objective. Plan.Chosen is what AlgoAuto would execute right
// now; Plan.Best additionally considers indexes not yet built.
func (db *DB) Explain(q Query, opts *ExplainOptions) (*Plan, error) {
	o := ExplainOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Objective == "" {
		// Accept the objective via the embedded QueryOptions too — the
		// field TopK's auto mode reads — so either spelling works.
		o.Objective = o.Query.Objective
	}
	// Plan on a private metrics lane, like TopK: PlannerCost must stay
	// per-query even when concurrent queries share the DB, and the
	// planning work still folds into the DB-wide clock.
	qm := sim.NewLane(db.cluster.Metrics())
	p, err := plan.Explain(db.cluster.WithMetrics(qm), q.q, db.store, plan.Options{
		Objective: o.Objective,
		Exec:      o.Query.withDefaults().execOptions(),
		Cache:     db.planCache,
	})
	db.cluster.Metrics().Advance(qm.SimTime())
	return p, err
}

// TopK executes the query with the chosen algorithm. Index-based
// algorithms require a prior EnsureIndexes call, while AlgoAuto plans
// the execution first: the cost-based planner ranks every registered
// executor and runs the cheapest one whose indexes are already built
// (or which needs none). The Result carries the ranked pairs, the
// resources consumed (the paper's three metrics: Cost.SimTime,
// Cost.NetworkBytes, Cost.KVReads / Dollars()), the executor that ran,
// and — for planned executions — the planner's cost estimate, making
// the estimated-vs-actual error measurable per query.
//
// TopK is safe for concurrent callers sharing one DB: each execution
// meters a private per-query collector (so Result.Cost never includes a
// concurrent query's work) and folds its totals back into the DB-wide
// Metrics when it completes.
func (db *DB) TopK(q Query, algo Algorithm, opts *QueryOptions) (*Result, error) {
	o := QueryOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	// Per-query metrics lane: resource counters forward to the DB-wide
	// collector as they accrue; the query's clock stays isolated and is
	// folded in once, below, keeping the global clock a cumulative
	// busy-time total even when queries overlap.
	qm := sim.NewLane(db.cluster.Metrics())
	qc := db.cluster.WithMetrics(qm)
	res, err := db.topKOn(qc, q, algo, o)
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	db.cluster.Metrics().Advance(res.Cost.SimTime)
	return res, nil
}

// topKOn dispatches the query on the given cluster view.
func (db *DB) topKOn(c *kvstore.Cluster, q Query, algo Algorithm, o QueryOptions) (*Result, error) {
	if algo == AlgoAuto {
		return db.topKAuto(c, q, o)
	}
	ex, err := executorFor(algo)
	if err != nil {
		return nil, err
	}
	res, err := ex.Run(c, q.q, db.store, o.execOptions())
	if err != nil {
		return nil, err
	}
	res.Algorithm = ex.Name()
	return res, nil
}

// topKAuto runs the planner and the executor it picks. The planner's
// statistics reads are charged to the same per-query lane as the
// execution, so Result.Cost covers the whole planned query; the
// planning share is reported separately in Result.PlannerCost.
func (db *DB) topKAuto(c *kvstore.Cluster, q Query, o QueryOptions) (*Result, error) {
	ex, p, err := plan.Choose(c, q.q, db.store, plan.Options{
		Objective: o.Objective,
		Exec:      o.execOptions(),
		Cache:     db.planCache,
	})
	if err != nil {
		return nil, err
	}
	res, err := ex.Run(c, q.q, db.store, o.execOptions())
	if err != nil {
		return nil, err
	}
	res.Algorithm = ex.Name()
	est := p.ChosenEstimate()
	res.Estimate = &est
	res.PlannerCost = p.PlannerCost
	// The planner's reads accrued on the same lane before the executor
	// snapshotted its delta; fold them into the reported total.
	res.Cost = res.Cost.Add(p.PlannerCost)
	return res, nil
}

package rankjoin

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/sim"
)

// Query is a two-way top-k equi-join over two defined relations.
type Query struct {
	q core.Query
}

// NewQuery builds a query joining two defined relations on their join
// attributes, ranking by the monotonic aggregate f, keeping k results.
func (db *DB) NewQuery(left, right string, f ScoreFunc, k int) (Query, error) {
	db.mu.Lock()
	l, lok := db.relations[left]
	r, rok := db.relations[right]
	db.mu.Unlock()
	if !lok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", left)
	}
	if !rok {
		return Query{}, fmt.Errorf("rankjoin: relation %q not defined", right)
	}
	q := core.Query{Left: l.rel, Right: r.rel, Score: f, K: k}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return Query{q: q}, nil
}

// WithK derives a query with a different k (indexes are shared).
func (q Query) WithK(k int) Query {
	out := q
	out.q.K = k
	return out
}

// K returns the query's result size target.
func (q Query) K() int { return q.q.K }

// ID returns the query's deterministic identifier.
func (q Query) ID() string { return q.q.ID() }

// EnsureIndexes builds (idempotently) the index structures the listed
// algorithms need for this query. Index build costs are charged to the
// DB's metrics — snapshot before/after to measure them (Fig. 9).
func (db *DB) EnsureIndexes(q Query, algos ...Algorithm) error {
	cfg := db.idxCfg
	if cfg.BFHMBuckets == 0 {
		cfg.BFHMBuckets = 100
	}
	if cfg.BFHMFPP == 0 {
		cfg.BFHMFPP = 0.05
	}
	if cfg.DRJNBuckets == 0 {
		cfg.DRJNBuckets = 100
	}
	if cfg.DRJNJoinParts == 0 {
		cfg.DRJNJoinParts = 64
	}
	for _, algo := range algos {
		switch algo {
		case AlgoNaive, AlgoHive, AlgoPig:
			// No index needed.
		case AlgoIJLMR:
			if _, ok := db.ijlmr[q.ID()]; ok {
				continue
			}
			idx, _, err := core.BuildIJLMR(db.cluster, q.q)
			if err != nil {
				return err
			}
			db.mu.Lock()
			db.ijlmr[q.ID()] = idx
			db.mu.Unlock()
		case AlgoISL:
			if _, ok := db.isl[q.ID()]; ok {
				continue
			}
			idx, _, err := core.BuildISL(db.cluster, q.q)
			if err != nil {
				return err
			}
			db.mu.Lock()
			db.isl[q.ID()] = idx
			db.mu.Unlock()
		case AlgoBFHM:
			if err := db.ensureBFHMPair(q, cfg); err != nil {
				return err
			}
		case AlgoDRJN:
			for _, rel := range []core.Relation{q.q.Left, q.q.Right} {
				if _, ok := db.drjn[rel.Name]; ok {
					continue
				}
				idx, _, err := core.BuildDRJN(db.cluster, rel, core.DRJNOptions{
					NumBuckets: cfg.DRJNBuckets,
					JoinParts:  cfg.DRJNJoinParts,
				})
				if err != nil {
					return err
				}
				db.mu.Lock()
				db.drjn[rel.Name] = idx
				db.mu.Unlock()
			}
		default:
			return fmt.Errorf("rankjoin: unknown algorithm %q", algo)
		}
	}
	return nil
}

// ensureBFHMPair builds both relations' BFHM indexes with a shared
// filter width (intersection requires equal widths; the first build
// auto-sizes from its heaviest bucket, the second inherits).
func (db *DB) ensureBFHMPair(q Query, cfg IndexConfig) error {
	var shared uint64
	db.mu.Lock()
	if idx, ok := db.bfhm[q.q.Left.Name]; ok {
		shared = idx.MBits
	} else if idx, ok := db.bfhm[q.q.Right.Name]; ok {
		shared = idx.MBits
	}
	db.mu.Unlock()
	for _, rel := range []core.Relation{q.q.Left, q.q.Right} {
		db.mu.Lock()
		_, ok := db.bfhm[rel.Name]
		db.mu.Unlock()
		if ok {
			continue
		}
		idx, _, err := core.BuildBFHM(db.cluster, rel, core.BFHMOptions{
			NumBuckets: cfg.BFHMBuckets,
			FPP:        cfg.BFHMFPP,
			MBits:      shared,
		})
		if err != nil {
			return err
		}
		shared = idx.MBits
		db.mu.Lock()
		db.bfhm[rel.Name] = idx
		db.mu.Unlock()
	}
	return nil
}

// SetIndexConfig overrides index-construction defaults for subsequent
// EnsureIndexes calls.
func (db *DB) SetIndexConfig(cfg IndexConfig) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.idxCfg = cfg
}

// IndexDiskSize reports the stored bytes of the named algorithm's
// index(es) for a query (the Section 7.2 index-size experiment). It
// returns zero for index-free algorithms.
func (db *DB) IndexDiskSize(q Query, algo Algorithm) uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch algo {
	case AlgoIJLMR:
		if idx, ok := db.ijlmr[q.ID()]; ok {
			sz, _ := db.cluster.TableDiskSize(idx.Table)
			return sz
		}
	case AlgoISL:
		if idx, ok := db.isl[q.ID()]; ok {
			sz, _ := db.cluster.TableDiskSize(idx.Table)
			return sz
		}
	case AlgoBFHM:
		var total uint64
		for _, name := range []string{q.q.Left.Name, q.q.Right.Name} {
			if idx, ok := db.bfhm[name]; ok {
				sz, _ := db.cluster.TableDiskSize(idx.Table)
				total += sz
			}
		}
		return total
	case AlgoDRJN:
		var total uint64
		for _, name := range []string{q.q.Left.Name, q.q.Right.Name} {
			if idx, ok := db.drjn[name]; ok {
				sz, _ := db.cluster.TableDiskSize(idx.Table)
				total += sz
			}
		}
		return total
	}
	return 0
}

// TopK executes the query with the chosen algorithm. Index-based
// algorithms require a prior EnsureIndexes call. The Result carries both
// the ranked pairs and the resources consumed (the paper's three
// metrics: Cost.SimTime, Cost.NetworkBytes, Cost.KVReads / Dollars()).
//
// TopK is safe for concurrent callers sharing one DB: each execution
// meters a private per-query collector (so Result.Cost never includes a
// concurrent query's work) and folds its totals back into the DB-wide
// Metrics when it completes.
func (db *DB) TopK(q Query, algo Algorithm, opts *QueryOptions) (*Result, error) {
	o := QueryOptions{ISLBatch: 100}
	if opts != nil {
		o = *opts
		if o.ISLBatch == 0 {
			o.ISLBatch = 100
		}
	}
	// Per-query metrics lane: resource counters forward to the DB-wide
	// collector as they accrue; the query's clock stays isolated and is
	// folded in once, below, keeping the global clock a cumulative
	// busy-time total even when queries overlap.
	qm := sim.NewLane(db.cluster.Metrics())
	qc := db.cluster.WithMetrics(qm)
	res, err := db.topKOn(qc, q, algo, o)
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	db.cluster.Metrics().Advance(res.Cost.SimTime)
	return res, nil
}

// topKOn dispatches the query on the given cluster view.
func (db *DB) topKOn(c *kvstore.Cluster, q Query, algo Algorithm, o QueryOptions) (*Result, error) {
	switch algo {
	case AlgoNaive:
		return core.NaiveTopK(c, q.q)
	case AlgoHive:
		return core.QueryHive(c, q.q)
	case AlgoPig:
		return core.QueryPig(c, q.q)
	case AlgoIJLMR:
		db.mu.Lock()
		idx, ok := db.ijlmr[q.ID()]
		db.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rankjoin: no IJLMR index for %s; call EnsureIndexes first", q.ID())
		}
		return core.QueryIJLMR(c, q.q, idx)
	case AlgoISL:
		db.mu.Lock()
		idx, ok := db.isl[q.ID()]
		db.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rankjoin: no ISL index for %s; call EnsureIndexes first", q.ID())
		}
		return core.QueryISL(c, q.q, idx, core.ISLOptions{
			BatchLeft:   o.ISLBatch,
			BatchRight:  o.ISLBatch,
			Parallelism: o.Parallelism,
		})
	case AlgoBFHM:
		db.mu.Lock()
		idxA, okA := db.bfhm[q.q.Left.Name]
		idxB, okB := db.bfhm[q.q.Right.Name]
		db.mu.Unlock()
		if !okA || !okB {
			return nil, fmt.Errorf("rankjoin: missing BFHM index for %s; call EnsureIndexes first", q.ID())
		}
		return core.QueryBFHM(c, q.q, idxA, idxB, core.BFHMQueryOptions{
			WriteBack:   o.BFHMWriteBack,
			Parallelism: o.Parallelism,
		})
	case AlgoDRJN:
		db.mu.Lock()
		idxA, okA := db.drjn[q.q.Left.Name]
		idxB, okB := db.drjn[q.q.Right.Name]
		db.mu.Unlock()
		if !okA || !okB {
			return nil, fmt.Errorf("rankjoin: missing DRJN index for %s; call EnsureIndexes first", q.ID())
		}
		return core.QueryDRJN(c, q.q, idxA, idxB)
	default:
		return nil, fmt.Errorf("rankjoin: unknown algorithm %q", algo)
	}
}

package rankjoin

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Re-exported data types. These alias the engine types so values flow
// between the public API and the algorithm layer without copying.
type (
	// Tuple is one relation row: a unique row key, a join value, and a
	// normalized score in [0, 1].
	Tuple = core.Tuple
	// JoinResult is one joined pair with its aggregate score.
	JoinResult = core.JoinResult
	// Result is a completed query: the top-k list plus consumed
	// resources (simulated time, network bytes, KV read units).
	Result = core.Result
	// ScoreFunc is a named monotonic score aggregate.
	ScoreFunc = core.ScoreFunc
	// Profile describes simulated cluster hardware.
	Profile = sim.Profile
	// Metrics accumulates the paper's three evaluation metrics.
	Metrics = sim.Metrics
	// WriteBackMode selects when reconstructed BFHM blobs persist.
	WriteBackMode = core.WriteBackMode
	// CostEstimate is a predicted query cost in the paper's three
	// metrics (simulated time, network bytes, KV read units).
	CostEstimate = core.CostEstimate
	// PlanStats is the statistics snapshot a plan was built from.
	PlanStats = core.PlanStats
	// Plan is a ranked set of candidate executions for one query.
	Plan = plan.Plan
	// PlanCandidate is one costed executor inside a Plan.
	PlanCandidate = plan.Candidate
	// Objective selects the metric the planner minimizes.
	Objective = plan.Objective
	// VFS is the filesystem seam durable DBs open their files through;
	// wrap it (e.g. with internal/faultfs) to inject storage faults.
	VFS = kvstore.VFS
	// CanceledError reports a query stopped by its context or deadline,
	// carrying the partial results collected before it fired.
	CanceledError = core.CanceledError
	// BudgetExceededError reports a query stopped by MaxReadUnits,
	// carrying the partial results collected before the cap fired.
	BudgetExceededError = core.BudgetExceededError
	// CorruptionError reports on-disk data that failed checksum
	// verification, naming the file and offset.
	CorruptionError = kvstore.CorruptionError
	// IOError reports a storage operation that failed at the
	// filesystem layer after retries, naming the file and operation.
	IOError = kvstore.IOError
)

// Typed failure sentinels, matched with errors.Is.
var (
	// ErrCanceled matches any *CanceledError: the query's context was
	// canceled or its deadline elapsed.
	ErrCanceled = core.ErrCanceled
	// ErrCorruption matches any *CorruptionError: bytes on disk failed
	// their checksum and were not silently dropped.
	ErrCorruption = kvstore.ErrCorruption
)

// Planner objectives.
const (
	// ObjectiveTime minimizes predicted turnaround time (default).
	ObjectiveTime = plan.ObjectiveTime
	// ObjectiveNetwork minimizes predicted network bytes.
	ObjectiveNetwork = plan.ObjectiveNetwork
	// ObjectiveDollars minimizes predicted KV read units.
	ObjectiveDollars = plan.ObjectiveDollars
)

// Score aggregates.
var (
	// Sum adds the two tuple scores (the paper's Q2).
	Sum = core.Sum
	// Product multiplies them (the paper's Q1).
	Product = core.Product
)

// RelativeError returns |est-actual|/actual — the per-query planner
// estimation error when applied to a planned Result's Estimate and
// Cost fields.
var RelativeError = core.RelativeError

// BFHM write-back policies (Section 6).
const (
	WriteBackOff   = core.WriteBackOff
	WriteBackEager = core.WriteBackEager
	WriteBackLazy  = core.WriteBackLazy
)

// Algorithm selects a rank-join strategy.
type Algorithm string

// Available algorithms.
const (
	AlgoNaive Algorithm = "naive"
	AlgoHive  Algorithm = "hive"
	AlgoPig   Algorithm = "pig"
	AlgoIJLMR Algorithm = "ijlmr"
	AlgoISL   Algorithm = "isl"
	AlgoBFHM  Algorithm = "bfhm"
	AlgoDRJN  Algorithm = "drjn"
	// AlgoAnyK is the any-k streaming tree executor: it enumerates the
	// results of an acyclic join tree (chains, stars, general shapes —
	// see NewTreeQuery) in descending score order with no k fixed up
	// front, maintaining HRJN-style bounds per tree node. It requires
	// the n-way inverse score lists (EnsureIndexes / EnsureMultiIndexes
	// build them) and is the only index-backed executor for trees with
	// band-predicate edges.
	AlgoAnyK Algorithm = "anyk"
	// AlgoAuto is not an algorithm but a planner mode: TopK runs the
	// cost-based planner and executes the cheapest strategy whose
	// indexes are already built (or which needs none). It works with no
	// prior EnsureIndexes call; building indexes first gives the
	// planner better strategies and better statistics to choose with.
	AlgoAuto Algorithm = "auto"
)

// Algorithms lists every implemented strategy in evaluation order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoHive, AlgoPig, AlgoIJLMR, AlgoISL, AlgoBFHM, AlgoDRJN, AlgoAnyK}
}

// Config configures a DB.
type Config struct {
	// Profile selects the simulated hardware; default sim.LC().
	Profile *Profile
	// Metrics optionally shares a collector across DBs.
	Metrics *Metrics
	// Dir roots a durable DB: OpenAt stores SSTables, WALs, the
	// manifest, and the rankjoin catalog there, and reopening the same
	// directory recovers everything. Ignored by Open.
	Dir string
	// VFS overrides the filesystem a durable DB opens its files
	// through (nil = the real filesystem). Fault-injection tests point
	// it at an internal/faultfs schedule. Ignored by Open.
	VFS VFS
	// Topology describes a multi-node deployment; only OpenDistributed
	// reads it (Open/OpenAt build single-process stores and ignore it).
	// Per-node storage lives in each NodeSpec, so Dir/VFS above do not
	// apply to distributed opens.
	Topology *Topology
}

// IndexConfig tunes index construction in EnsureIndexes.
type IndexConfig struct {
	// BFHMBuckets is the histogram resolution (default 100).
	BFHMBuckets int
	// BFHMFPP is the Bloom false-positive target (default 0.05).
	BFHMFPP float64
	// DRJNBuckets is the DRJN score-band count (default 100).
	DRJNBuckets int
	// DRJNJoinParts is the DRJN join-partition count (default 64).
	DRJNJoinParts int
}

// QueryOptions tunes query execution.
type QueryOptions struct {
	// ISLBatch is the scanner caching size for ISL (default 100).
	ISLBatch int
	// BFHMWriteBack selects the blob write-back policy (default off).
	BFHMWriteBack WriteBackMode
	// Parallelism fans the client read path out: BFHM's reverse-mapping
	// multi-gets issue per-region RPCs over that many concurrent lanes,
	// and at any value >= 2 ISL's left/right streams prefetch so their
	// round trips overlap (ISL's fan-out is the two streams, so higher
	// values change nothing there). The simulated clock advances by the
	// slowest lane; resource counters sum over every consumed batch.
	// 0 or 1 means sequential.
	Parallelism int
	// Objective is the metric AlgoAuto's planner minimizes (default
	// ObjectiveTime). Ignored for hand-picked algorithms.
	Objective Objective
	// PageToken resumes a previous TopK where it stopped: pass the
	// Result.NextPageToken of the prior page and the same query, and
	// the next k results come from the retained cursor — marginal cost
	// for incremental executors instead of a from-scratch re-run.
	// Tokens are single-use (each page returns a fresh one) and expire
	// when the DB's cursor cache evicts them.
	PageToken string
	// Context cancels the query cooperatively: cancellation is checked
	// between results and inside scans, index builds, and MapReduce
	// tasks. A canceled query returns a *CanceledError (matching
	// ErrCanceled) carrying the partial results collected so far.
	Context context.Context
	// Deadline bounds the query's wall-clock time without needing a
	// context. Zero = none. Behaves like Context expiry: typed error,
	// partial results.
	Deadline time.Time
	// MaxReadUnits caps the query's read-unit spend (the paper's
	// dollar-cost metric). 0 = unlimited. Exceeding it returns a
	// *BudgetExceededError carrying the partial results.
	MaxReadUnits uint64
}

// withDefaults fills unset query options — shared by TopK and the
// planner path; the default values themselves live in core (the
// executor layer) so estimates and executions can never disagree.
func (o QueryOptions) withDefaults() QueryOptions {
	if o.ISLBatch == 0 {
		o.ISLBatch = core.DefaultISLBatch
	}
	return o
}

// execOptions converts to the executor layer's option struct. The
// budget instance is shared between the executor (per-result checks)
// and the cluster guard the query layer installs (per-RPC checks).
func (o QueryOptions) execOptions() core.ExecOptions {
	return core.ExecOptions{
		ISLBatch:      o.ISLBatch,
		BFHMWriteBack: o.BFHMWriteBack,
		Parallelism:   o.Parallelism,
		Budget:        core.NewBudget(o.Context, o.Deadline, o.MaxReadUnits),
	}
}

// ExplainOptions tunes DB.Explain.
type ExplainOptions struct {
	// Objective ranks the candidates (default ObjectiveTime).
	Objective Objective
	// Stream ranks candidates by the predicted cost of deep ranked
	// enumeration (what DB.Stream's auto mode uses) instead of the
	// bounded top-k: incremental cursors are priced at their marginal
	// per-page cost, materializing ones at their doubling re-runs.
	Stream bool
	// Query carries the execution options cost estimates depend on
	// (ISL batch size, parallelism).
	Query QueryOptions
}

// DB is a handle to an embedded NoSQL cluster with rank-join support.
type DB struct {
	mu        sync.Mutex
	cluster   *kvstore.Cluster
	relations map[string]*RelationHandle // guarded by: mu
	// store holds every built index behind the executor registry —
	// per-query two-way indexes, per-relation statistics structures,
	// and the shared n-way inverse score lists — including the
	// single-flight build serialization.
	store *core.IndexStore
	// planCache memoizes the planner's statistics walks per (query, k)
	// until the input tables change.
	planCache *plan.Cache
	// cursors retains paused query cursors between pages, keyed by
	// page token (see QueryOptions.PageToken).
	cursors *cursorCache
	idxCfg  IndexConfig // guarded by: mu
}

// Open creates a DB over a fresh simulated cluster. For a durable DB
// rooted at a directory, use OpenAt. It fails only when the
// KVSTORE_DISK env toggle is set and the scratch store cannot be
// created.
func Open(cfg Config) (*DB, error) {
	p := sim.LC()
	if cfg.Profile != nil {
		p = *cfg.Profile
	}
	cluster, err := kvstore.NewCluster(p, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	return newDB(cluster), nil
}

// newDB assembles a DB around an existing cluster (fresh or recovered).
func newDB(cluster *kvstore.Cluster) *DB {
	return &DB{
		cluster:   cluster,
		relations: map[string]*RelationHandle{},
		store:     core.NewIndexStore(),
		planCache: plan.NewCache(),
		cursors:   newCursorCache(),
	}
}

// Metrics returns the DB's metric collector (cumulative across all
// operations; use Snapshot/Sub or the per-query Result.Cost for deltas).
func (db *DB) Metrics() *Metrics { return db.cluster.Metrics() }

// Cluster exposes the underlying store for advanced use (examples and
// the bench harness inspect region layouts and table sizes through it).
func (db *DB) Cluster() *kvstore.Cluster { return db.cluster }

// MaintenanceError reports a maintained write that failed part-way,
// naming the divergent index and carrying the batch timestamp for an
// idempotent re-apply (see the core package's Maintainer).
type MaintenanceError = core.MaintenanceError

// RelationHandle wraps one rank-join input relation.
type RelationHandle struct {
	db  *DB
	rel core.Relation
	// writeMu serializes maintained writes to this relation: Insert,
	// Update, and DeleteKey are read-check-write sequences, and two
	// racing writers of one row key could otherwise both observe the
	// old state and strand index entries (the phantom-result bug the
	// upsert exists to prevent). Reads never take it.
	writeMu sync.Mutex
}

// DefineRelation creates the backing table for a new relation. Relation
// names must be unique and become part of index table names.
func (db *DB) DefineRelation(name string) (*RelationHandle, error) {
	if err := kvstore.ValidateKeyComponent(name); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, dup := db.relations[name]; dup {
		db.mu.Unlock()
		return nil, fmt.Errorf("rankjoin: relation %q already defined", name)
	}
	rel := relationFor(name)
	if _, err := db.cluster.CreateTable(rel.Table, []string{rel.Family}, nil); err != nil {
		db.mu.Unlock()
		return nil, err
	}
	h := &RelationHandle{db: db, rel: rel}
	db.relations[name] = h
	db.mu.Unlock()
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return h, nil
}

// Relation returns a previously defined relation handle, or nil.
func (db *DB) Relation(name string) *RelationHandle {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.relations[name]
}

// RelationNames lists defined relations in sorted order.
func (db *DB) RelationNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []string
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Name returns the relation's name.
func (h *RelationHandle) Name() string { return h.rel.Name }

// maintainer assembles the Section 6 update interceptor for the indexes
// currently built over this relation — ALL of them: a relation joined in
// several queries has one IJLMR/ISL table per query, and each gets the
// mutation (the old single-binding assembly kept only the last match, so
// whichever query's index happened to be walked last was the only one
// maintained).
func (h *RelationHandle) maintainer() *core.Maintainer {
	m := &core.Maintainer{C: h.db.cluster, Rel: h.rel}
	h.db.store.EachIJLMR(func(id string, idx *core.IJLMRIndex) {
		if fam, ok := familyFor(id, h.rel.Name, idx.LeftFamily, idx.RightFamily); ok {
			m.IJLMR = append(m.IJLMR, core.BoundIJLMR{Idx: idx, Family: fam})
		}
	})
	h.db.store.EachISL(func(id string, idx *core.ISLIndex) {
		if fam, ok := familyFor(id, h.rel.Name, idx.LeftFamily, idx.RightFamily); ok {
			m.ISL = append(m.ISL, core.BoundISL{Idx: idx, Family: fam})
		}
	})
	m.ISLN = h.db.islnBindings(h.rel.Name)
	if idx, ok := h.db.store.BFHM(h.rel.Name); ok {
		m.BFHM = idx
	}
	if idx, ok := h.db.store.DRJN(h.rel.Name); ok {
		m.DRJN = idx
	}
	return m
}

// islnBindings snapshots the multiway ISLN indexes covering one
// relation — each n-way index table carries one column family per
// member relation, and every one of them is maintained on writes.
func (db *DB) islnBindings(relName string) []core.BoundISLN {
	var out []core.BoundISLN
	db.store.EachISLN(func(_ string, idx *core.ISLNIndex) {
		for _, fam := range idx.Families {
			if fam == relName {
				out = append(out, core.BoundISLN{Idx: idx, Family: fam})
				break
			}
		}
	})
	return out
}

// familyFor matches a relation name against an index's two families.
func familyFor(_, relName, leftFam, rightFam string) (string, bool) {
	if relName == leftFam {
		return leftFam, true
	}
	if relName == rightFam {
		return rightFam, true
	}
	return "", false
}

// Get reads the relation's current tuple for a row key (ok=false when
// the row is absent or lacks the join/score columns).
func (h *RelationHandle) Get(rowKey string) (Tuple, bool, error) {
	row, err := h.db.cluster.Get(h.rel.Table, rowKey, h.rel.Family)
	if err != nil {
		return Tuple{}, false, err
	}
	if row == nil {
		return Tuple{}, false, nil
	}
	t, ok := core.TupleFromRow(&h.rel, row)
	return t, ok, nil
}

// Insert upserts one tuple, synchronously maintaining every index built
// over this relation (Section 6 semantics) — IJLMR, ISL, BFHM mutation
// records, and DRJN delta counters, shipped with the base write as one
// batched group mutation. If the row key already holds a live tuple the
// insert becomes an update, retiring the old index entries under the
// same timestamp: a blind re-insert used to leave the old score's
// inverse-list entries live, producing phantom results.
func (h *RelationHandle) Insert(rowKey, joinValue string, score float64) error {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	new := Tuple{RowKey: rowKey, JoinValue: joinValue, Score: score}
	old, ok, err := h.Get(rowKey)
	if err != nil {
		return err
	}
	if ok {
		return h.maintainer().UpdateTuple(old, new)
	}
	return h.maintainer().InsertTuple(new)
}

// Update replaces an existing tuple's join value and score, deleting the
// old index entries and inserting the new ones under a single timestamp.
// It reads the current tuple itself (the embedded store IS the paper's
// interception point) and fails if the row is absent.
func (h *RelationHandle) Update(rowKey, joinValue string, score float64) error {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	old, ok, err := h.Get(rowKey)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("rankjoin: relation %q has no row %q to update", h.rel.Name, rowKey)
	}
	return h.maintainer().UpdateTuple(old, Tuple{RowKey: rowKey, JoinValue: joinValue, Score: score})
}

// Delete removes a tuple (the caller supplies its current join value and
// score, as at the paper's interception point).
func (h *RelationHandle) Delete(rowKey, joinValue string, score float64) error {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	return h.maintainer().DeleteTuple(Tuple{RowKey: rowKey, JoinValue: joinValue, Score: score})
}

// DeleteKey removes a tuple by row key alone, reading its current join
// value and score first. It is a no-op for absent rows.
func (h *RelationHandle) DeleteKey(rowKey string) error {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	old, ok, err := h.Get(rowKey)
	if err != nil || !ok {
		return err
	}
	return h.maintainer().DeleteTuple(old)
}

// BatchInsert inserts many NEW tuples with full index maintenance,
// batching their augmented mutations into chunked group writes (one
// write RPC per chunk instead of one per tuple). Unlike Insert it does
// not check for existing rows — reusing a live row key strands its old
// index entries, so load fresh keys only (use Insert or Update for
// overwrites, or BulkLoad + EnsureIndexes for initial loads).
func (h *RelationHandle) BatchInsert(tuples []Tuple) error {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	return h.maintainer().InsertBatch(tuples)
}

// BulkLoad inserts tuples efficiently WITHOUT index maintenance — load
// data first, then build indexes with EnsureIndexes.
func (h *RelationHandle) BulkLoad(tuples []Tuple) error {
	var cells []kvstore.Cell
	for _, t := range tuples {
		cells = append(cells,
			kvstore.Cell{Row: t.RowKey, Family: h.rel.Family, Qualifier: h.rel.JoinQual, Value: []byte(t.JoinValue)},
			kvstore.Cell{Row: t.RowKey, Family: h.rel.Family, Qualifier: h.rel.ScoreQual, Value: kvstore.FloatValue(t.Score)},
		)
		if len(cells) >= 4096 {
			//lint:allow maintcheck BulkLoad is the documented unmaintained path; EnsureIndexes rebuilds afterwards
			if err := h.db.cluster.BatchPut(h.rel.Table, cells); err != nil {
				return err
			}
			cells = cells[:0]
		}
	}
	if len(cells) > 0 {
		//lint:allow maintcheck BulkLoad is the documented unmaintained path; EnsureIndexes rebuilds afterwards
		return h.db.cluster.BatchPut(h.rel.Table, cells)
	}
	return nil
}

// DiskSize returns the relation's stored bytes.
func (h *RelationHandle) DiskSize() uint64 {
	sz, _ := h.db.cluster.TableDiskSize(h.rel.Table)
	return sz
}

// WriteBackBFHM runs the offline write-back pass for this relation —
// dirty BFHM blobs are reconstructed and DRJN bands carrying delta
// records are consolidated (records purged) — returning how many
// structures were rewritten.
func (h *RelationHandle) WriteBackBFHM() (int, error) {
	h.writeMu.Lock()
	defer h.writeMu.Unlock()
	return h.maintainer().WriteBackAll()
}

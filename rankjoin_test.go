package rankjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// mustOpen builds a fresh in-memory DB, failing the test on setup
// errors (disk-mode scratch dir creation).
func mustOpen(t testing.TB, cfg Config) *DB {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func loadTwoRelations(t testing.TB, db *DB, n int) ([]Tuple, []Tuple) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	mk := func(prefix string) []Tuple {
		var out []Tuple
		for i := 0; i < n; i++ {
			out = append(out, Tuple{
				RowKey:    fmt.Sprintf("%s%04d", prefix, i),
				JoinValue: fmt.Sprintf("j%d", rng.Intn(30)),
				Score:     float64(rng.Intn(1000)) / 1000,
			})
		}
		return out
	}
	left, right := mk("l"), mk("r")
	lh, err := db.DefineRelation("left")
	if err != nil {
		t.Fatal(err)
	}
	rh, err := db.DefineRelation("right")
	if err != nil {
		t.Fatal(err)
	}
	if err := lh.BulkLoad(left); err != nil {
		t.Fatal(err)
	}
	if err := rh.BulkLoad(right); err != nil {
		t.Fatal(err)
	}
	return left, right
}

func refTopK(left, right []Tuple, f ScoreFunc, k int) []float64 {
	var scores []float64
	for _, lt := range left {
		for _, rt := range right {
			if lt.JoinValue == rt.JoinValue {
				scores = append(scores, f.Fn(lt.Score, rt.Score))
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func TestPublicAPIAllAlgorithmsAgree(t *testing.T) {
	db := mustOpen(t, Config{})
	left, right := loadTwoRelations(t, db, 200)
	q, err := db.NewQuery("left", "right", Sum, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, Algorithms()...); err != nil {
		t.Fatal(err)
	}
	want := refTopK(left, right, Sum, 15)
	for _, algo := range append(Algorithms(), AlgoNaive) {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Results) != len(want) {
			t.Fatalf("%s: %d results, want %d", algo, len(res.Results), len(want))
		}
		for i, r := range res.Results {
			if d := r.Score - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("%s: score[%d] = %f, want %f", algo, i, r.Score, want[i])
			}
		}
		if res.Cost.KVReads == 0 && algo != AlgoNaive {
			t.Errorf("%s: zero KV reads reported", algo)
		}
	}
}

func TestPublicAPIWithK(t *testing.T) {
	db := mustOpen(t, Config{})
	left, right := loadTwoRelations(t, db, 150)
	q, err := db.NewQuery("left", "right", Product, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoISL, AlgoBFHM); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 25} {
		qk := q.WithK(k)
		if qk.K() != k {
			t.Fatalf("WithK(%d).K() = %d", k, qk.K())
		}
		want := refTopK(left, right, Product, k)
		for _, algo := range []Algorithm{AlgoISL, AlgoBFHM} {
			res, err := db.TopK(qk, algo, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) != len(want) {
				t.Fatalf("%s k=%d: %d results, want %d", algo, k, len(res.Results), len(want))
			}
		}
	}
}

func TestPublicAPIOnlineUpdates(t *testing.T) {
	db := mustOpen(t, Config{})
	left, right := loadTwoRelations(t, db, 100)
	q, err := db.NewQuery("left", "right", Sum, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoIJLMR, AlgoISL, AlgoBFHM); err != nil {
		t.Fatal(err)
	}
	// A new top pair must appear in every index-based algorithm.
	lh, rh := db.Relation("left"), db.Relation("right")
	if lh == nil || rh == nil {
		t.Fatal("relations lost")
	}
	if err := lh.Insert("lHOT", "hotkey", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := rh.Insert("rHOT", "hotkey", 1.0); err != nil {
		t.Fatal(err)
	}
	left = append(left, Tuple{RowKey: "lHOT", JoinValue: "hotkey", Score: 1.0})
	right = append(right, Tuple{RowKey: "rHOT", JoinValue: "hotkey", Score: 1.0})
	want := refTopK(left, right, Sum, 5)
	if want[0] != 2.0 {
		t.Fatal("setup broken")
	}
	for _, algo := range []Algorithm{AlgoIJLMR, AlgoISL, AlgoBFHM} {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[0].Score != 2.0 {
			t.Fatalf("%s: top score %f after insert, want 2.0", algo, res.Results[0].Score)
		}
	}
	// Delete the pair; it must vanish everywhere.
	if err := lh.Delete("lHOT", "hotkey", 1.0); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoIJLMR, AlgoISL, AlgoBFHM} {
		res, err := db.TopK(q, algo, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[0].Score == 2.0 {
			t.Fatalf("%s: deleted pair still ranked first", algo)
		}
	}
	// Offline write-back must report reconstructed buckets.
	if n, err := lh.WriteBackBFHM(); err != nil || n == 0 {
		t.Fatalf("WriteBackBFHM = %d, %v", n, err)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := mustOpen(t, Config{})
	if _, err := db.NewQuery("none", "none", Sum, 5); err == nil {
		t.Error("undefined relation accepted")
	}
	if _, err := db.DefineRelation(""); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, err := db.DefineRelation("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DefineRelation("dup"); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := db.DefineRelation("other"); err != nil {
		t.Fatal(err)
	}
	q, err := db.NewQuery("dup", "other", Sum, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.TopK(q, AlgoBFHM, nil); err == nil {
		t.Error("query without index accepted")
	}
	if _, err := db.TopK(q, Algorithm("bogus"), nil); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := db.EnsureIndexes(q, Algorithm("bogus")); err == nil {
		t.Error("bogus algorithm index accepted")
	}
	if names := db.RelationNames(); len(names) != 2 || names[0] != "dup" {
		t.Errorf("RelationNames = %v", names)
	}
}

func TestIndexDiskSizes(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 300)
	// The DRJN matrix is data-independent (buckets x partitions); size
	// it for the test's tiny data volume the way the paper sizes it for
	// billions of rows (where 500 buckets = 8.5 MB vs 85 GB ISL lists).
	db.SetIndexConfig(IndexConfig{DRJNBuckets: 20, DRJNJoinParts: 8})
	q, err := db.NewQuery("left", "right", Sum, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureIndexes(q, AlgoIJLMR, AlgoISL, AlgoBFHM, AlgoDRJN); err != nil {
		t.Fatal(err)
	}
	sizes := map[Algorithm]uint64{}
	for _, algo := range []Algorithm{AlgoIJLMR, AlgoISL, AlgoBFHM, AlgoDRJN} {
		sizes[algo] = db.IndexDiskSize(q, algo)
		if sizes[algo] == 0 {
			t.Errorf("%s index size = 0", algo)
		}
	}
	// Section 7.2: DRJN's histogram is far smaller than the full
	// inverted lists; BFHM (with reverse mappings) is the largest.
	if !(sizes[AlgoDRJN] < sizes[AlgoISL]) {
		t.Errorf("DRJN (%d) should be smaller than ISL (%d)", sizes[AlgoDRJN], sizes[AlgoISL])
	}
	if !(sizes[AlgoBFHM] > sizes[AlgoISL]) {
		t.Errorf("BFHM (%d) should exceed ISL (%d) — it adds reverse mappings", sizes[AlgoBFHM], sizes[AlgoISL])
	}
	if db.IndexDiskSize(q, AlgoHive) != 0 {
		t.Error("index-free algorithm reported a size")
	}
}

func TestEnsureIndexesIdempotent(t *testing.T) {
	db := mustOpen(t, Config{})
	loadTwoRelations(t, db, 100)
	q, _ := db.NewQuery("left", "right", Sum, 5)
	if err := db.EnsureIndexes(q, AlgoISL, AlgoBFHM); err != nil {
		t.Fatal(err)
	}
	before := db.Metrics().Snapshot()
	if err := db.EnsureIndexes(q, AlgoISL, AlgoBFHM); err != nil {
		t.Fatal(err)
	}
	delta := db.Metrics().Snapshot().Sub(before)
	if delta.KVWrites != 0 {
		t.Errorf("second EnsureIndexes rebuilt indexes (%d writes)", delta.KVWrites)
	}
}

package rankjoin

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/sim"
)

// This file is the public streaming surface: DB.Stream returns a Rows
// iterator that enumerates join results in score order without fixing k
// up front, and the cursor cache behind page tokens lets TopK's "next
// k" resume bounded state instead of re-running the query.

// Rows streams the results of one query in descending score order.
// Iterate with Next/Result, check Err afterwards, and Close when done
// (or early — an abandoned stream stops consuming read units at once).
//
//	rows, _ := db.Stream(q, rankjoin.AlgoAuto, nil)
//	defer rows.Close()
//	for rows.Next() {
//	    r := rows.Result()
//	    ...
//	}
//	if rows.Err() != nil { ... }
//
// Rows is not safe for concurrent use. Like TopK, each stream meters a
// private per-query collector; Cost reports what the stream has
// consumed so far, and the simulated clock folds into the DB-wide
// metrics as results are pulled.
type Rows struct {
	db     *DB
	cur    core.Cursor
	lane   *Metrics
	algo   string
	res    JoinResult
	err    error
	done   bool
	closed bool
	folded time.Duration
}

// Stream starts a streaming execution of q. The query's k acts only as
// a page-size hint for batch-shaped executors (and the planner); the
// stream itself yields results until the join is exhausted or the
// caller closes it. AlgoAuto plans with deep enumeration in mind: the
// planner ranks executors by the predicted cost of a multi-page
// enumeration (charging materializing executors their re-runs), so it
// can pick differently here than for a bounded TopK.
func (db *DB) Stream(q Query, algo Algorithm, opts *QueryOptions) (*Rows, error) {
	o := QueryOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	qm := sim.NewLane(db.cluster.Metrics())
	qc := db.cluster.WithMetrics(qm)
	// One budget for the stream's lifetime: enforced per pulled result
	// and, via the guarded view, inside every metered RPC.
	eo := o.execOptions()
	qc = eo.Budget.GuardedView(qc)

	var ex core.Executor
	var err error
	if algo == AlgoAuto {
		ex, _, err = plan.Choose(qc, q.t, db.store, plan.Options{
			Objective: o.Objective,
			Exec:      eo,
			Cache:     db.planCache,
			Stream:    true,
		})
	} else {
		ex, err = executorFor(algo)
		if err == nil {
			err = checkShape(ex, q.t)
		}
	}
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	cur, err := ex.Open(qc, q.t, db.store, eo)
	if err != nil {
		db.cluster.Metrics().Advance(qm.SimTime())
		return nil, err
	}
	rows := &Rows{db: db, cur: cur, lane: qm, algo: ex.Name()}
	rows.fold()
	return rows, nil
}

// fold advances the DB-wide clock by the lane time not yet folded, so
// cumulative metrics stay live while a stream is open. Resource
// counters forward to the parent collector on their own.
func (r *Rows) fold() {
	if d := r.lane.SimTime() - r.folded; d > 0 {
		r.db.cluster.Metrics().Advance(d)
		r.folded += d
	}
}

// Next advances to the next result, reporting false at exhaustion or
// error (check Err).
func (r *Rows) Next() bool {
	if r.closed || r.done || r.err != nil {
		return false
	}
	jr, err := r.cur.Next()
	r.fold()
	if err != nil {
		r.err = err
		return false
	}
	if jr == nil {
		r.done = true
		return false
	}
	r.res = *jr
	return true
}

// Result returns the row Next advanced to.
func (r *Rows) Result() JoinResult { return r.res }

// Algorithm names the executor streaming the results.
func (r *Rows) Algorithm() string { return r.algo }

// Err returns the first error the stream hit, if any.
func (r *Rows) Err() error { return r.err }

// Cost reports the resources this stream has consumed so far.
func (r *Rows) Cost() sim.Snapshot { return r.lane.Snapshot() }

// Close releases the stream. Further Next calls return false and no
// further read units accrue.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.fold()
	return r.cur.Close()
}

// ---- Page-token cursor cache ----

// maxCachedCursors bounds how many paused page cursors a DB retains;
// past it the least recently issued token expires (its cursor closes).
const maxCachedCursors = 64

// pagedCursor is one paused bounded execution awaiting its next page.
type pagedCursor struct {
	cur     core.Cursor
	lane    *Metrics
	algo    string
	queryID string
	folded  time.Duration
	// budget is the query's shared bound instance (nil when the cursor
	// was opened unbounded); each resuming page rebinds it to its own
	// request's context, deadline, and read-unit cap.
	budget *core.Budget
}

// cursorCache maps single-use page tokens to paused cursors.
type cursorCache struct {
	mu      sync.Mutex
	entries map[string]*pagedCursor // guarded by: mu
	order   []string                // issue order, oldest first; guarded by: mu
	nextID  uint64                  // guarded by: mu
}

func newCursorCache() *cursorCache {
	return &cursorCache{entries: map[string]*pagedCursor{}}
}

// put stashes a paused cursor and returns its (fresh) token, evicting
// the oldest entry past capacity.
func (cc *cursorCache) put(pc *pagedCursor) string {
	cc.mu.Lock()
	cc.nextID++
	token := fmt.Sprintf("pt-%x-%s", cc.nextID, pc.queryID)
	cc.entries[token] = pc
	cc.order = append(cc.order, token)
	var evicted []*pagedCursor
	for len(cc.entries) > maxCachedCursors && len(cc.order) > 0 {
		oldest := cc.order[0]
		cc.order = cc.order[1:]
		if e, ok := cc.entries[oldest]; ok {
			evicted = append(evicted, e)
			delete(cc.entries, oldest)
		}
	}
	cc.mu.Unlock()
	for _, e := range evicted {
		_ = e.cur.Close()
	}
	return token
}

// take removes and returns the cursor behind a token. Tokens are
// single-use: a second take of the same token fails.
func (cc *cursorCache) take(token string) (*pagedCursor, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	pc, ok := cc.entries[token]
	if !ok {
		return nil, fmt.Errorf("rankjoin: unknown or expired page token %q", token)
	}
	delete(cc.entries, token)
	// Drop the token from the issue-order list too: the steady-state
	// paging pattern is put/take/put/take, and leaving taken tokens in
	// order would grow it by one entry per page forever.
	for i, tok := range cc.order {
		if tok == token {
			cc.order = append(cc.order[:i], cc.order[i+1:]...)
			break
		}
	}
	return pc, nil
}

package rankjoin

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// This file is the public surface of the general query model: acyclic
// join trees. A tree query names n relations (the leaves) and n-1 join
// predicates (the edges), each either an equi-predicate on the join
// attributes or a band predicate |a-b| <= width over numeric join
// values, ranked by an n-ary monotonic aggregate over all leaf scores.
// Two-way queries (NewQuery) and star queries (NewMultiQuery) are the
// trivial tree shapes; NewTreeQuery admits chains and general acyclic
// shapes, and the AlgoAnyK executor enumerates any of them in score
// order without fixing k up front.

// Tree-edge re-exports.
type (
	// TreeEdge is one join predicate between two leaves of a tree query.
	TreeEdge = core.TreeEdge
	// PredKind discriminates edge predicates ("equi" or "band").
	PredKind = core.PredKind
	// ShapeError reports a structurally invalid join tree (cyclic,
	// disconnected, out-of-range edge endpoints, ...).
	ShapeError = core.ShapeError
)

// Edge predicate kinds.
const (
	// PredEqui joins two leaves on equal join values.
	PredEqui = core.PredEqui
	// PredBand joins two leaves whose numeric join values differ by at
	// most TreeEdge.Band.
	PredBand = core.PredBand
)

// NewTreeQuery builds a query over an acyclic join tree: relations are
// the leaves, edges the join predicates (indices into relations), f the
// monotonic aggregate over all leaf scores, k the result target. The
// tree must be connected and acyclic — exactly len(relations)-1 edges —
// or a *ShapeError is returned.
func (db *DB) NewTreeQuery(relations []string, edges []TreeEdge, f NScoreFunc, k int) (Query, error) {
	rels := make([]core.Relation, 0, len(relations))
	seen := map[string]bool{}
	db.mu.Lock()
	for _, name := range relations {
		h, ok := db.relations[name]
		if !ok {
			db.mu.Unlock()
			return Query{}, fmt.Errorf("rankjoin: relation %q not defined", name)
		}
		if seen[name] {
			db.mu.Unlock()
			return Query{}, fmt.Errorf("rankjoin: relation %q listed twice in tree query", name)
		}
		seen[name] = true
		rels = append(rels, h.rel)
	}
	db.mu.Unlock()
	t := &core.JoinTree{
		Relations: rels,
		Edges:     append([]TreeEdge(nil), edges...),
		Score:     f,
		K:         k,
	}
	if err := t.Validate(); err != nil {
		return Query{}, err
	}
	return Query{t: t}, nil
}

// StreamTree starts a streaming execution of a tree query: sugar for
// DB.Stream that reads naturally next to NewTreeQuery. AlgoAnyK (or
// AlgoAuto picking it) enumerates results in score order natively.
func (db *DB) StreamTree(q Query, algo Algorithm, opts *QueryOptions) (*Rows, error) {
	return db.Stream(q, algo, opts)
}

// ---- JSON tree-query shape (the HTTP server's wire form) ----

// TreeEdgeSpec is the JSON form of one tree edge.
type TreeEdgeSpec struct {
	// A and B index the tree's relation list.
	A int `json:"a"`
	B int `json:"b"`
	// Kind is "equi" (default when empty) or "band".
	Kind string `json:"kind,omitempty"`
	// Band is the band width for kind "band".
	Band float64 `json:"band,omitempty"`
}

// TreeSpec is the JSON form of a tree query.
type TreeSpec struct {
	// Relations lists the tree's leaves by defined relation name.
	Relations []string `json:"relations"`
	// Edges lists the n-1 join predicates. Empty with exactly two
	// relations means the single equi-edge {0,1} (the two-way shape).
	Edges []TreeEdgeSpec `json:"edges,omitempty"`
	// Score names the aggregate: "sum" or "product".
	Score string `json:"score"`
	// K is the result target.
	K int `json:"k"`
}

// edges converts the spec's edge list to core edges, defaulting an
// empty list on a two-leaf spec to the single equi-edge.
func (s *TreeSpec) edges() ([]TreeEdge, error) {
	if len(s.Edges) == 0 && len(s.Relations) == 2 {
		return []TreeEdge{{A: 0, B: 1, Kind: PredEqui}}, nil
	}
	out := make([]TreeEdge, 0, len(s.Edges))
	for i, e := range s.Edges {
		var kind PredKind
		switch e.Kind {
		case "", string(PredEqui):
			kind = PredEqui
		case string(PredBand):
			kind = PredBand
		default:
			return nil, fmt.Errorf("rankjoin: tree edge %d has unknown kind %q (want %q or %q)",
				i, e.Kind, PredEqui, PredBand)
		}
		out = append(out, TreeEdge{A: e.A, B: e.B, Kind: kind, Band: e.Band})
	}
	return out, nil
}

// scoreFor resolves a spec's aggregate name.
func scoreFor(name string) (NScoreFunc, error) {
	switch name {
	case "", "sum":
		return SumN, nil
	case "product":
		return ProductN, nil
	default:
		return NScoreFunc{}, fmt.Errorf("rankjoin: unknown score aggregate %q (want sum or product)", name)
	}
}

// ParseTreeSpec decodes and structurally validates a JSON tree spec
// without needing a DB: relation names are checked for validity and
// uniqueness only (definedness is the DB's concern), edges for shape.
// It never panics on hostile input; malformed specs return typed
// errors (*ShapeError for structural problems).
func ParseTreeSpec(data []byte) (*TreeSpec, error) {
	var spec TreeSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("rankjoin: bad tree query JSON: %w", err)
	}
	if len(spec.Relations) < 2 {
		return nil, core.NewShapeError(fmt.Sprintf("tree query needs >= 2 relations, got %d", len(spec.Relations)))
	}
	seen := map[string]bool{}
	rels := make([]core.Relation, 0, len(spec.Relations))
	for _, name := range spec.Relations {
		if name == "" {
			return nil, core.NewShapeError("tree query has an empty relation name")
		}
		if err := kvstore.ValidateKeyComponent(name); err != nil {
			return nil, core.NewShapeError(fmt.Sprintf("bad relation name: %v", err))
		}
		if seen[name] {
			return nil, core.NewShapeError(fmt.Sprintf("relation %q listed twice", name))
		}
		seen[name] = true
		rels = append(rels, relationFor(name))
	}
	edges, err := spec.edges()
	if err != nil {
		return nil, err
	}
	f, err := scoreFor(spec.Score)
	if err != nil {
		return nil, err
	}
	k := spec.K
	if k == 0 {
		k = 10
	}
	t := &core.JoinTree{Relations: rels, Edges: edges, Score: f, K: k}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	spec.K = k
	return &spec, nil
}

// NewTreeQueryFromSpec builds a tree query from a decoded spec against
// this DB's defined relations.
func (db *DB) NewTreeQueryFromSpec(spec *TreeSpec) (Query, error) {
	edges, err := spec.edges()
	if err != nil {
		return Query{}, err
	}
	f, err := scoreFor(spec.Score)
	if err != nil {
		return Query{}, err
	}
	k := spec.K
	if k == 0 {
		k = 10
	}
	return db.NewTreeQuery(spec.Relations, edges, f, k)
}

// NewTreeQueryFromSpec builds a tree query from a decoded spec against
// the cluster's defined relations; the query routes, pages, and fails
// over exactly like every other distributed query.
func (d *Distributed) NewTreeQueryFromSpec(spec *TreeSpec) (Query, error) {
	edges, err := spec.edges()
	if err != nil {
		return Query{}, err
	}
	f, err := scoreFor(spec.Score)
	if err != nil {
		return Query{}, err
	}
	k := spec.K
	if k == 0 {
		k = 10
	}
	return d.NewTreeQuery(spec.Relations, edges, f, k)
}
